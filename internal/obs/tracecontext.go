package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// tracecontext.go is the cross-process half of the span tracer: a
// dependency-free trace context in the shape of a W3C `traceparent` header
// (version 00, sampled flag always 01), so a sweep that fans out across the
// fabric keeps one trace identity from the dispatcher's sweep span down to
// every worker's execute_spec span. Only the subset the fleet needs is
// implemented — parse, format, context plumbing — not the full W3C state
// machine; unknown versions and malformed headers are simply ignored and the
// receiver mints a fresh context.

// TraceParentHeader is the HTTP header carrying a TraceContext, shaped like
// W3C trace-context: "00-<32 hex trace id>-<16 hex parent span id>-01".
const TraceParentHeader = "traceparent"

// TraceContext identifies the position of a process in a distributed trace:
// the trace every span belongs to, plus the span ID the next child should
// parent under. The zero value is "no trace" (Valid() == false).
type TraceContext struct {
	// TraceID is the 32-lowercase-hex fleet-wide trace identity, shared by
	// every process that works on one sweep or request.
	TraceID string
	// SpanID is the 16-lowercase-hex ID of the span that spawned this hop —
	// remote children record it as their logical parent.
	SpanID string
}

// NewTraceContext mints a fresh random trace identity (crypto/rand, so two
// processes never collide).
func NewTraceContext() TraceContext {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read never fails on supported platforms; a zero context
		// (Valid() == false) is the honest fallback if it somehow does.
		return TraceContext{}
	}
	return TraceContext{
		TraceID: hex.EncodeToString(b[:16]),
		SpanID:  hex.EncodeToString(b[16:]),
	}
}

// Valid reports whether both fields are well-formed (and the trace ID is not
// all zeros, which W3C reserves for "no trace").
func (tc TraceContext) Valid() bool {
	return isLowerHex(tc.TraceID, 32) && isLowerHex(tc.SpanID, 16) &&
		tc.TraceID != "00000000000000000000000000000000"
}

// Header renders the context as a traceparent header value. Invalid contexts
// render as "" so callers can set the header unconditionally.
func (tc TraceContext) Header() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// Child returns the context a span within this trace should hand to ITS
// remote children: same trace, the given local span as parent.
func (tc TraceContext) Child(span SpanID) TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: SpanIDHex(span)}
}

// SpanIDHex renders a recorder-local SpanID in the 16-hex wire form used by
// TraceContext. Local IDs are small sequential integers, so the encoding is
// zero-padded rather than random — uniqueness across processes comes from
// the trace ID, not the span ID.
func SpanIDHex(id SpanID) string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceParent parses a traceparent header value. Only version 00 with
// lowercase hex fields is accepted; anything else returns ok == false (the
// caller mints a fresh context instead of failing the request).
func ParseTraceParent(s string) (TraceContext, bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2 flag chars.
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !isLowerHex(s[53:55], 2) || !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceCtxKey carries the current TraceContext through a context.Context.
type traceCtxKey struct{}

// ContextWithTraceContext returns a context carrying tc. An invalid tc
// returns ctx unchanged.
func ContextWithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the context's TraceContext, or the zero value
// (Valid() == false) when the context is uninstrumented.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
