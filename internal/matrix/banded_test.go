package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBandedSPD returns a random symmetric positive definite matrix with
// the given half-bandwidth, both in banded and dense form. Diagonal
// dominance guarantees positive definiteness.
func randomBandedSPD(rng *rand.Rand, n, k int) (*SymBanded, *Dense) {
	sb := NewSymBanded(n, k)
	for i := 0; i < n; i++ {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			sb.Add(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(sb.At(i, j))
			}
		}
		sb.Add(i, i, rowSum+0.5+rng.Float64())
	}
	return sb, sb.ToDense()
}

// TestBandedCholeskyMatchesDense is the differential property test of the
// numerics contract: across ≥100 seeded random banded SPD systems, the
// banded factorization must agree with the dense Cholesky solve to close to
// machine precision.
func TestBandedCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trial := 0
	f := func() bool {
		trial++
		n := 2 + rng.Intn(40)
		k := rng.Intn(n)
		sb, d := randomBandedSPD(rng, n, k)

		bc, err := FactorBandedCholesky(sb)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d): banded Cholesky failed: %v", trial, n, k, err)
		}
		dc, err := FactorCholesky(d)
		if err != nil {
			t.Fatalf("trial %d: dense Cholesky failed: %v", trial, err)
		}

		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want, err := dc.SolveVec(rhs)
		if err != nil {
			t.Fatalf("trial %d: dense solve failed: %v", trial, err)
		}
		got := bc.SolveVec(rhs)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d (n=%d k=%d): x[%d] = %g, dense %g", trial, n, k, i, got[i], want[i])
			}
		}

		// Residual check against the original matrix, independent of the
		// dense reference.
		ax := make([]float64, n)
		sb.MulVecTo(ax, got)
		for i := range rhs {
			if math.Abs(ax[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
				t.Fatalf("trial %d: residual[%d] = %g", trial, i, ax[i]-rhs[i])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedCholeskyRejectsIndefinite(t *testing.T) {
	sb := NewSymBanded(3, 1)
	sb.Add(0, 0, 1)
	sb.Add(1, 1, -2) // indefinite
	sb.Add(2, 2, 1)
	if _, err := FactorBandedCholesky(sb); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestBandedMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		k := rng.Intn(n)
		sb, d := randomBandedSPD(rng, n, k)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		sb.MulVecTo(got, x)
		want := d.MulVec(x)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: (Ax)[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBandedSolveInPlaceAndAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sb, _ := randomBandedSPD(rng, 40, 5)
	bc, err := FactorBandedCholesky(sb)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, 40)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	want := bc.SolveVec(rhs)

	// dst aliasing the rhs is part of the contract.
	inPlace := append([]float64(nil), rhs...)
	bc.SolveVecTo(inPlace, inPlace)
	for i := range want {
		if math.Abs(want[i]-inPlace[i]) > 1e-12 {
			t.Fatalf("in-place solve diverged at %d: %g vs %g", i, inPlace[i], want[i])
		}
	}

	dst := make([]float64, 40)
	if allocs := testing.AllocsPerRun(100, func() { bc.SolveVecTo(dst, rhs) }); allocs != 0 {
		t.Fatalf("SolveVecTo allocates %v times per call, want 0", allocs)
	}
}
