// Command thermal-trace runs one simulation and streams the per-core
// temperature trace as CSV — the raw material of the paper's Fig. 2 plots.
//
// Example:
//
//	thermal-trace -grid 4 -bench blackscholes -threads 2 -sched rotation > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	hotpotato "repro"
)

func main() {
	grid := flag.Int("grid", 4, "chip edge length")
	bench := flag.String("bench", "blackscholes", "PARSEC benchmark")
	threads := flag.Int("threads", 2, "threads of the single task")
	schedName := flag.String("sched", "rotation",
		"scheduler: "+strings.Join(hotpotato.SchedulerNames(), "|"))
	tau := flag.Float64("tau", 0.5e-3, "rotation interval for -sched rotation/hotpotato")
	stride := flag.Int("stride", 5, "output every N-th slice")
	flag.Parse()

	plat, err := hotpotato.NewPlatform(*grid, *grid)
	if err != nil {
		log.Fatal(err)
	}
	b, err := hotpotato.BenchmarkByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, b, *threads, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	tasks := []*hotpotato.Task{task}

	cfg := hotpotato.DefaultSimConfig()
	if *schedName == "static" {
		// The unmanaged Fig. 2(a) execution: expose the violation.
		cfg.DTMEnabled = false
	}

	// One registry builds every policy; AutoPin derives the ring-ordered
	// pinning (and the innermost-ring rotation cycle) the static policies
	// need, exactly as this tool has always placed them.
	spec := hotpotato.SchedulerSpec{Name: *schedName, TDTM: cfg.TDTM, Tau: *tau}
	spec, err = spec.AutoPin(plat, tasks)
	if err != nil {
		log.Fatal(err)
	}
	sch, err := hotpotato.NewSchedulerFromSpec(plat, spec)
	if err != nil {
		log.Fatal(err)
	}

	s, err := hotpotato.NewSimulation(plat, cfg, sch, tasks)
	if err != nil {
		log.Fatal(err)
	}

	rec, err := hotpotato.NewTraceRecorder(*stride)
	if err != nil {
		log.Fatal(err)
	}
	s.SetTrace(rec.Hook())
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteTemperatureCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "response %.1f ms, peak %.2f °C, %d migrations, trace %s\n",
		res.AvgResponse*1e3, res.PeakTemp, res.Migrations, rec.TempSummary())
}
