package twin

import (
	"fmt"
	"math"
)

// Bound construction constants. Calibration walks the power-of-two prefixes
// of the seeded sample sequence (8, 16, 32, …); each level L fits on the
// first half of its prefix and validates on the held-out second half,
// publishing the candidate bound
//
//	safety·tailFactor(m)·maxHeldOutResidual + penalty/L + floor
//
// — the worst residual on the m samples the fit never saw, inflated by a
// safety factor and a tail factor that extrapolates a max over m draws to
// the tailTarget-draw scale the differential suite exercises, plus a 1/L
// penalty that keeps thin prefixes honest and an absolute floor so the bound
// never collapses below the simulator's own discretization scale. A level
// only fields a candidate when its fit half carries at least
// minRowsPerCoef rows per regressor — near-interpolating fits produce
// flattering validation maxima that do not generalize. The published
// (coefficients, bound) pair is the candidate with the minimum bound, which
// makes the bound monotone non-increasing in calibration density by
// construction: a longer seeded sample sequence contains every shorter
// power-of-two prefix, so its candidate set is a superset and every
// candidate's fit and validation windows are fixed forever. See
// docs/THEORY.md §"Surrogate model and error bounds".
const (
	boundSafety = 1.30

	steadyPenaltyC   = 2.0
	steadyFloorC     = 0.50
	transPenaltyC    = 4.0
	transFloorC      = 0.75
	ringPenaltyC     = 3.0
	ringFloorC       = 0.75
	makespanPenalty  = 0.02 // seconds·samples
	makespanFloorRel = 0.05
	makespanFloorAbs = 1e-4 // seconds

	// minLevel is the smallest calibration prefix that publishes a
	// candidate; below it the held-out halves are too thin to mean anything.
	minLevel = 8

	// minRowsPerCoef is the candidate eligibility threshold: a level's fit
	// half must carry at least this many rows per regression coefficient.
	minRowsPerCoef = 4

	// tailTarget is the draw count the published bound must survive: the
	// max residual over m validation draws is extrapolated to the max over
	// tailTarget draws by ln(tailTarget)/ln(m) (exact for exponential
	// residual tails, conservative for lighter ones).
	tailTarget = 1000
)

// levelsFor returns the power-of-two prefix lengths evaluated for n samples:
// minLevel, 2·minLevel, … ≤ n. Samples beyond the last power of two still
// extend the calibration envelope, just not the fits.
func levelsFor(n int) []int {
	var levels []int
	for l := minLevel; l <= n; l *= 2 {
		levels = append(levels, l)
	}
	return levels
}

// tailFactor extrapolates a maximum over m validation draws to the
// tailTarget-draw scale. Never below 1.
func tailFactor(m int) float64 {
	if m < 2 {
		return math.Log(tailTarget) / math.Log(2)
	}
	f := math.Log(tailTarget) / math.Log(float64(m))
	if f < 1 {
		return 1
	}
	return f
}

// minSamplesForDim returns the smallest sample count that fields at least
// one eligible candidate for a dim-coefficient fit with one row per sample:
// the top level's fit half must reach minRowsPerCoef·dim rows.
func minSamplesForDim(dim int) int {
	need := 2 * minRowsPerCoef * dim // level L has L/2 fit rows
	for l := minLevel; ; l *= 2 {
		if l >= need {
			return l
		}
	}
}

// fitted is one per-field calibration outcome: the coefficients of the level
// that achieved the published (minimum) bound.
type fitted struct {
	coef  []float64
	bound float64
}

// consider replaces the incumbent when the candidate bound is strictly lower.
func (f *fitted) consider(coef []float64, bound float64) {
	if f.coef == nil || bound < f.bound {
		f.coef = coef
		f.bound = bound
	}
}

// FitBucket calibrates one platform-size bucket from oracle samples. samples
// and rings must come from a seeded generator so that the same seed yields
// the same prefix regardless of total length — that property is what makes
// the published bounds monotone in density and the artifact reproducible.
func FitBucket(width, height int, ambient float64, samples []Sample, rings []RingSample) (BucketModel, error) {
	if width < 1 || height < 1 {
		return BucketModel{}, fmt.Errorf("twin: invalid bucket grid %dx%d", width, height)
	}
	if min := minSamplesForDim(transientDim); len(samples) < min {
		return BucketModel{}, fmt.Errorf("twin: bucket %s needs at least %d samples, got %d", BucketKey(width, height), min, len(samples))
	}
	if min := minSamplesForDim(ringDim); len(rings) < min {
		return BucketModel{}, fmt.Errorf("twin: bucket %s needs at least %d ring samples, got %d", BucketKey(width, height), min, len(rings))
	}
	n := width * height
	for i, s := range samples {
		if err := s.Case.Validate(); err != nil {
			return BucketModel{}, fmt.Errorf("twin: sample %d: %w", i, err)
		}
		if s.Case.Width != width || s.Case.Height != height {
			return BucketModel{}, fmt.Errorf("twin: sample %d is %dx%d, bucket is %dx%d", i, s.Case.Width, s.Case.Height, width, height)
		}
		if len(s.Obs.SteadyTemps) < n {
			return BucketModel{}, fmt.Errorf("twin: sample %d has %d steady temps, want ≥ %d", i, len(s.Obs.SteadyTemps), n)
		}
	}
	for i, r := range rings {
		if r.Case.Width != width || r.Case.Height != height {
			return BucketModel{}, fmt.Errorf("twin: ring sample %d is %dx%d, bucket is %dx%d", i, r.Case.Width, r.Case.Height, width, height)
		}
		if len(r.Case.Base) != n {
			return BucketModel{}, fmt.Errorf("twin: ring sample %d base has %d cores, want %d", i, len(r.Case.Base), n)
		}
		if len(r.Case.RingCores) == 0 || len(r.Case.SlotWatts) != len(r.Case.RingCores) {
			return BucketModel{}, fmt.Errorf("twin: ring sample %d has %d slots for %d ring cores", i, len(r.Case.SlotWatts), len(r.Case.RingCores))
		}
		if sfd := r.Case.SteadyFieldDeltaC; math.IsNaN(sfd) || sfd < 0 || math.IsInf(sfd, 0) {
			return BucketModel{}, fmt.Errorf("twin: ring sample %d steady field delta = %g, want a finite non-negative rise", i, sfd)
		}
		if sfd := r.Case.SteadyMaxDeltaC; math.IsNaN(sfd) || sfd < 0 || math.IsInf(sfd, 0) {
			return BucketModel{}, fmt.Errorf("twin: ring sample %d steady max delta = %g, want a finite non-negative rise", i, sfd)
		}
	}

	var steady, trans, makespan fitted
	kdim := kernelDim(width, height)

	for _, level := range levelsFor(len(samples)) {
		fit, val := samples[:level/2], samples[level/2:level]
		tail := boundSafety * tailFactor(len(val))

		// Steady kernel: fit on the first half, validate the peak prediction
		// on the held-out half. Kernel rows come per (sample, core) pair, so
		// even thin prefixes carry enough rows per coefficient.
		if len(fit)*n >= minRowsPerCoef*kdim {
			kernel, err := fitKernel(width, height, kdim, ambient, fit)
			if err != nil {
				return BucketModel{}, fmt.Errorf("twin: steady fit at level %d: %w", level, err)
			}
			b := BucketModel{Width: width, Height: height, Kernel: kernel}
			resid := 0.0
			for _, s := range val {
				est := ambient + b.steadyPeakDelta(s.Case.HotPower)
				if r := math.Abs(est - s.Obs.SteadyPeakC); r > resid {
					resid = r
				}
			}
			steady.consider(kernel, tail*resid+steadyPenaltyC/float64(level)+steadyFloorC)
		}

		if len(fit) >= minRowsPerCoef*transientDim {
			coef, resid, err := fitField(fit, val, transientDim,
				func(x []float64, s Sample) { transientFeatures(x, s.Case) },
				func(s Sample) float64 { return s.Obs.TransientPeakC - ambient })
			if err != nil {
				return BucketModel{}, fmt.Errorf("twin: transient fit at level %d: %w", level, err)
			}
			trans.consider(coef, tail*resid+transPenaltyC/float64(level)+transFloorC)
		}

		if len(fit) >= minRowsPerCoef*makespanDim {
			coef, resid, err := fitField(fit, val, makespanDim,
				func(x []float64, s Sample) { makespanFeatures(x, s.Case) },
				func(s Sample) float64 { return s.Obs.MakespanS })
			if err != nil {
				return BucketModel{}, fmt.Errorf("twin: makespan fit at level %d: %w", level, err)
			}
			meanAbs := 0.0
			for _, s := range val {
				meanAbs += math.Abs(s.Obs.MakespanS)
			}
			meanAbs /= float64(len(val))
			floor := makespanFloorRel*meanAbs + makespanFloorAbs
			makespan.consider(coef, tail*resid+makespanPenalty/float64(level)+floor)
		}
	}

	// Ring model: same scheme over the ring sample prefixes.
	var ring fitted
	field := make([]float64, n)
	ringRow := func(r RingSample) []float64 {
		x := make([]float64, ringDim)
		ringFeaturesInto(x, field, r.Case)
		return x
	}
	for _, level := range levelsFor(len(rings)) {
		fit, val := rings[:level/2], rings[level/2:level]
		if len(fit) < minRowsPerCoef*ringDim {
			continue
		}
		rows := make([][]float64, len(fit))
		y := make([]float64, len(fit))
		for i, r := range fit {
			rows[i] = ringRow(r)
			y[i] = r.PeakC - r.Case.Ambient
		}
		coef, err := leastSquares(rows, y)
		if err != nil {
			return BucketModel{}, fmt.Errorf("twin: ring fit at level %d: %w", level, err)
		}
		resid := 0.0
		for _, r := range val {
			est := r.Case.Ambient + dot(coef, ringRow(r))
			if d := math.Abs(est - r.PeakC); d > resid {
				resid = d
			}
		}
		ring.consider(coef, boundSafety*tailFactor(len(val))*resid+ringPenaltyC/float64(level)+ringFloorC)
	}

	// The power envelope and tau ceiling come from the full sample set: they
	// describe where calibration evidence exists at all.
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		w := totalPower(s.Case.HotPower)
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	maxTau := 0.0
	ringMinW, ringMaxW := math.Inf(1), math.Inf(-1)
	var rx [ringDim]float64
	for _, r := range rings {
		if r.Case.Tau > maxTau {
			maxTau = r.Case.Tau
		}
		ringFeaturesInto(rx[:], field, r.Case)
		if rx[2] < ringMinW {
			ringMinW = rx[2]
		}
		if rx[2] > ringMaxW {
			ringMaxW = rx[2]
		}
	}

	bucket := BucketModel{
		Width:        width,
		Height:       height,
		Ambient:      ambient,
		Kernel:       steady.coef,
		SteadyBoundC: steady.bound,
		Transient:    FieldModel{Coef: trans.coef, Bound: trans.bound},
		Makespan:     FieldModel{Coef: makespan.coef, Bound: makespan.bound},
		Ring:         FieldModel{Coef: ring.coef, Bound: ring.bound},
		Samples:      len(samples),
		RingSamples:  len(rings),
		MinTotalW:    minW,
		MaxTotalW:    maxW,
		MaxTauS:      maxTau,
		RingMinW:     ringMinW,
		RingMaxW:     ringMaxW,
	}
	if err := bucket.validate(BucketKey(width, height)); err != nil {
		return BucketModel{}, err
	}
	return bucket, nil
}

// fitKernel solves for the spatial influence kernel over every (sample, core)
// pair: regressor d of core i is the total power at Manhattan distance d from
// i, plus the two edge-correction regressors (own power and total power, each
// scaled by the core's missing-neighbor count); the target is that core's
// steady temperature rise.
func fitKernel(width, height, kdim int, ambient float64, samples []Sample) ([]float64, error) {
	var rows [][]float64
	var y []float64
	for _, s := range samples {
		cores := len(s.Case.HotPower)
		total := totalPower(s.Case.HotPower)
		for i := 0; i < cores; i++ {
			x := make([]float64, kdim)
			for j := 0; j < cores; j++ {
				x[manhattan(width, i, j)] += s.Case.HotPower[j]
			}
			e := float64(missingNeighbors(width, height, i))
			x[kdim-2] = e * s.Case.HotPower[i]
			x[kdim-1] = e * total
			rows = append(rows, x)
			y = append(y, s.Obs.SteadyTemps[i]-ambient)
		}
	}
	return leastSquares(rows, y)
}

// fitField fits one scalar field on `fit` and returns the coefficients plus
// the maximum residual on the held-out `val` samples.
func fitField(fit, val []Sample, dim int, features func(x []float64, s Sample), target func(s Sample) float64) ([]float64, float64, error) {
	rows := make([][]float64, len(fit))
	y := make([]float64, len(fit))
	for i, s := range fit {
		x := make([]float64, dim)
		features(x, s)
		rows[i] = x
		y[i] = target(s)
	}
	coef, err := leastSquares(rows, y)
	if err != nil {
		return nil, 0, err
	}
	resid := 0.0
	x := make([]float64, dim)
	for _, s := range val {
		features(x, s)
		if r := math.Abs(dot(coef, x) - target(s)); r > resid {
			resid = r
		}
	}
	return coef, resid, nil
}
