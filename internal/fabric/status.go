package fabric

import (
	"time"

	"repro/internal/obs"
)

// status.go is the dispatcher's read-only observability surface: sweep
// progress (GET /v1/sweeps, /v1/sweeps/{id}), the merged fleet span tree
// (/v1/sweeps/{id}/spans), and worker liveness (/fabric/v1/workers). All of
// it is computed on demand under the dispatcher mutex from state the control
// plane already maintains — the endpoints add no bookkeeping to the lease
// hot path beyond integer tallies.

// Worker health states, derived from the reaper's deadlines: a worker whose
// last call is within one lease TTL is ok (nothing it holds can expire
// before it is expected back); within three TTLs it is late (its leases have
// been reaped but it may still return); beyond that it is lost.
const (
	WorkerHealthOK   = "ok"
	WorkerHealthLate = "late"
	WorkerHealthLost = "lost"
)

// SweepStatus is one sweep's progress row.
type SweepStatus struct {
	// SweepID names the sweep (and its archive manifest).
	SweepID string `json:"sweep_id"`
	// RequestID is the submitting client's X-Request-Id, when it sent one.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the fleet-wide trace identity every span of the sweep
	// carries (empty when span tracking is disabled).
	TraceID string `json:"trace_id,omitempty"`
	// State is "active", "done", or "canceled".
	State string `json:"state"`
	// Total is the cell count; the per-state tallies below sum to it.
	Total int `json:"total"`
	// Pending cells are queued, Leased cells are booked to workers; both are
	// zero once the sweep closes.
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// Completed/Failed/Canceled/Pruned are finished-cell tallies; CacheHits
	// counts archive and worker-cache replays among them.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Pruned    int `json:"pruned"`
	CacheHits int `json:"cache_hits"`
	// Requeues counts cells re-queued by lease expiries (worker deaths).
	Requeues int `json:"requeues"`
	// ElapsedMS is submit→now for active sweeps, submit→close for finished.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS estimates the remaining wall-clock from the completion rate so
	// far; 0 when unknown (no cells finished yet, or the sweep is done).
	ETAMS float64 `json:"eta_ms,omitempty"`
	// Workers is the per-worker throughput attribution, by cells posted.
	Workers []SweepWorkerStatus `json:"workers,omitempty"`
	// Drift summarizes the twin-drift observations workers reported for this
	// sweep (nil when none closed).
	Drift *DriftStatus `json:"drift,omitempty"`
}

// SweepWorkerStatus is one worker's contribution to one sweep.
type SweepWorkerStatus struct {
	// ID is the worker identity.
	ID string `json:"id"`
	// Done is how many of the sweep's cells this worker posted.
	Done int `json:"done"`
	// CellsPerSec is Done over the worker's first→last post interval (0 when
	// everything landed in one post — no interval to rate over).
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// DriftStatus summarizes a sweep's twin-drift observations.
type DriftStatus struct {
	// Checks is how many predict-then-simulate pairs closed.
	Checks int `json:"checks"`
	// Violations counts |residual| > bound among conclusive predictions.
	Violations int `json:"violations"`
	// MeanResidualC / MaxAbsResidualC characterize the signed residual
	// distribution (°C); the full histogram lives in the workers' (and
	// federated fleet_*) twin_residual metric.
	MeanResidualC   float64 `json:"mean_residual_c"`
	MaxAbsResidualC float64 `json:"max_abs_residual_c"`
}

// SweepList is the GET /v1/sweeps body.
type SweepList struct {
	// Active sweeps are still streaming records.
	Active []SweepStatus `json:"active"`
	// Recent sweeps finished but remain queryable in memory (newest first).
	Recent []SweepStatus `json:"recent"`
	// Archived is the archive's manifest view (newest first), covering
	// sweeps from before this dispatcher process too. Empty without -archive.
	Archived []Manifest `json:"archived,omitempty"`
}

// SweepSpans is the GET /v1/sweeps/{id}/spans body: the merged fleet span
// tree of one sweep.
type SweepSpans struct {
	SweepID string `json:"sweep_id"`
	TraceID string `json:"trace_id,omitempty"`
	// Total counts spans ever started in (or grafted into) the merged
	// recorder; Dropped counts merge-side capacity drops plus the spans the
	// workers' per-cell recorders dropped before export.
	Total   int64 `json:"total"`
	Dropped int64 `json:"dropped"`
	// Spans is the tree, dispatcher sweep span at the root.
	Spans []*obs.SpanNode `json:"spans"`
}

// WorkerStatus is one row of GET /fabric/v1/workers.
type WorkerStatus struct {
	// ID is the worker identity.
	ID string `json:"id"`
	// Capacity is the per-lease cell count the worker asked for at
	// registration (0 = dispatcher default).
	Capacity int `json:"capacity,omitempty"`
	// ActiveLeases is how many leases the worker currently holds.
	ActiveLeases int `json:"active_leases"`
	// CellsDone counts results the worker posted over its lifetime.
	CellsDone int64 `json:"cells_done"`
	// CellsPerSec is CellsDone over the worker's registered lifetime.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	// LastSeenAgeMS is how long ago the worker last called in.
	LastSeenAgeMS int64 `json:"last_seen_age_ms"`
	// Health is ok/late/lost — see the WorkerHealth constants.
	Health string `json:"health"`
}

// WorkerList is the GET /fabric/v1/workers body.
type WorkerList struct {
	Workers []WorkerStatus `json:"workers"`
}

// findSweepLocked resolves a sweep ID against the active registry, then the
// recent ring. Callers hold d.mu.
func (d *Dispatcher) findSweepLocked(id string) *sweepState {
	if sw, ok := d.sweeps[id]; ok {
		return sw
	}
	for i := len(d.recent) - 1; i >= 0; i-- {
		if d.recent[i].id == id {
			return d.recent[i]
		}
	}
	return nil
}

// sweepStatusLocked builds one sweep's status row. Callers hold d.mu.
func (d *Dispatcher) sweepStatusLocked(sw *sweepState, now time.Time) SweepStatus {
	st := SweepStatus{
		SweepID:   sw.id,
		RequestID: sw.requestID,
		TraceID:   sw.traceID,
		State:     "active",
		Total:     sw.total,
		Completed: sw.completed,
		Failed:    sw.failed,
		Canceled:  sw.canceledN,
		Pruned:    sw.prunedN,
		CacheHits: sw.cacheHits,
		Requeues:  sw.requeues,
	}
	end := now
	if sw.closed {
		end = sw.finished
		st.State = "done"
		if sw.canceled {
			st.State = "canceled"
		}
	} else {
		for _, t := range d.queue {
			if t.sweep == sw {
				st.Pending++
			}
		}
		for _, l := range d.leases {
			if l.sweep == sw {
				st.Leased += len(l.cells)
			}
		}
	}
	st.ElapsedMS = float64(end.Sub(sw.began).Nanoseconds()) / 1e6
	finishedCells := sw.completed + sw.failed + sw.canceledN + sw.prunedN
	if !sw.closed && finishedCells > 0 && st.ElapsedMS > 0 {
		rate := float64(finishedCells) / st.ElapsedMS // cells per ms
		st.ETAMS = float64(sw.total-finishedCells) / rate
	}
	for id, ws := range sw.perWorker {
		row := SweepWorkerStatus{ID: id, Done: ws.done}
		if span := ws.last.Sub(ws.first); span > 0 {
			row.CellsPerSec = float64(ws.done) / span.Seconds()
		}
		st.Workers = append(st.Workers, row)
	}
	sortSweepWorkers(st.Workers)
	if sw.drift.checks > 0 {
		st.Drift = &DriftStatus{
			Checks:          sw.drift.checks,
			Violations:      sw.drift.violations,
			MeanResidualC:   sw.drift.sumResidual / float64(sw.drift.checks),
			MaxAbsResidualC: sw.drift.maxAbs,
		}
	}
	return st
}

// sortSweepWorkers orders attribution rows by descending contribution, ties
// by ID, so the status output is diff-stable.
func sortSweepWorkers(rows []SweepWorkerStatus) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			a, b := rows[j-1], rows[j]
			if a.Done > b.Done || (a.Done == b.Done && a.ID <= b.ID) {
				break
			}
			rows[j-1], rows[j] = b, a
		}
	}
}

// SweepStatuses returns the status rows of every active sweep and every
// retained finished sweep (newest first), plus up to archiveLimit archive
// manifests.
func (d *Dispatcher) SweepStatuses(archiveLimit int) SweepList {
	d.mu.Lock()
	now := d.clock.Now()
	list := SweepList{Active: []SweepStatus{}, Recent: []SweepStatus{}}
	for _, sw := range d.sweeps {
		list.Active = append(list.Active, d.sweepStatusLocked(sw, now))
	}
	for i := len(d.recent) - 1; i >= 0; i-- {
		list.Recent = append(list.Recent, d.sweepStatusLocked(d.recent[i], now))
	}
	archive := d.cfg.Archive
	d.mu.Unlock()

	// Active sweeps are in registry (map) order; sort by ID for stability.
	for i := 1; i < len(list.Active); i++ {
		for j := i; j > 0 && list.Active[j-1].SweepID > list.Active[j].SweepID; j-- {
			list.Active[j-1], list.Active[j] = list.Active[j], list.Active[j-1]
		}
	}
	if archive != nil && archiveLimit > 0 {
		list.Archived = archive.RecentManifests(archiveLimit)
	}
	return list
}

// SweepStatus returns one sweep's status row; ok is false when the ID is
// neither active nor retained.
func (d *Dispatcher) SweepStatus(id string) (SweepStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw := d.findSweepLocked(id)
	if sw == nil {
		return SweepStatus{}, false
	}
	return d.sweepStatusLocked(sw, d.clock.Now()), true
}

// SweepSpans returns one sweep's merged fleet span tree; ok is false when
// the sweep is unknown or span tracking is disabled.
func (d *Dispatcher) SweepSpans(id string) (SweepSpans, bool) {
	d.mu.Lock()
	sw := d.findSweepLocked(id)
	if sw == nil || sw.spans == nil {
		d.mu.Unlock()
		return SweepSpans{}, false
	}
	spans, traceID, exportDropped := sw.spans, sw.traceID, sw.spanExportDropped
	d.mu.Unlock()
	// The recorder has its own lock; reading it outside d.mu keeps span
	// assembly off the lease path.
	return SweepSpans{
		SweepID: id,
		TraceID: traceID,
		Total:   spans.Total(),
		Dropped: spans.Dropped() + exportDropped,
		Spans:   spans.Tree(),
	}, true
}

// WorkerStatuses returns every known worker's liveness row, sorted by ID.
func (d *Dispatcher) WorkerStatuses() WorkerList {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	list := WorkerList{Workers: []WorkerStatus{}}
	leases := map[string]int{}
	for _, l := range d.leases {
		leases[l.workerID]++
	}
	for _, w := range d.workers {
		age := now.Sub(w.lastSeen)
		health := WorkerHealthOK
		switch {
		case age > 3*d.cfg.LeaseTTL:
			health = WorkerHealthLost
		case age > d.cfg.LeaseTTL:
			health = WorkerHealthLate
		}
		row := WorkerStatus{
			ID:            w.id,
			Capacity:      w.capacity,
			ActiveLeases:  leases[w.id],
			CellsDone:     w.cellsDone,
			LastSeenAgeMS: age.Milliseconds(),
			Health:        health,
		}
		if lifetime := now.Sub(w.registered); lifetime > 0 && w.cellsDone > 0 {
			row.CellsPerSec = float64(w.cellsDone) / lifetime.Seconds()
		}
		list.Workers = append(list.Workers, row)
	}
	rows := list.Workers
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j-1].ID > rows[j].ID; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
	return list
}
