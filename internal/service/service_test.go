package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
)

// quickSpecJSON is a fast 4×4 run in the minimal wire form a client would
// POST.
const quickSpecJSON = `{
	"platform":  {"width": 4, "height": 4},
	"scheduler": {"name": "hotpotato"},
	"workload":  {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}
}`

// longSpecJSON runs long enough (in host time) to still be in flight while a
// test cancels, overflows the queue, or shuts the server down.
const longSpecJSON = `{
	"platform":  {"width": 4, "height": 4},
	"scheduler": {"name": "hotpotato"},
	"workload":  {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}]}
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPlatformCacheSingleflight(t *testing.T) {
	c := NewPlatformCache()
	cfg := hotpotato.DefaultPlatformConfig(4, 4)

	const callers = 8
	plats := make([]*hotpotato.Platform, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Get(cfg)
			if err != nil {
				t.Error(err)
			}
			plats[i] = p
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if plats[i] != plats[0] {
			t.Fatalf("caller %d got a different *Platform: %p vs %p", i, plats[i], plats[0])
		}
	}
	if hits, misses := c.Stats(); misses != 1 || hits != callers-1 {
		t.Errorf("want 1 miss / %d hits, got %d / %d", callers-1, misses, hits)
	}
	if c.Len() != 1 {
		t.Errorf("want 1 entry, got %d", c.Len())
	}

	// A different chip is a different entry and a different pointer.
	other, err := c.Get(hotpotato.DefaultPlatformConfig(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if other == plats[0] {
		t.Error("distinct configs shared a Platform")
	}
	if c.Len() != 2 {
		t.Errorf("want 2 entries, got %d", c.Len())
	}
}

// TestSyncRunMatchesInProcess is the serving half of the equivalence
// contract: POST /v1/run must return a Result bit-identical to the in-process
// ExecuteSpec of the same document (host-time fields aside).
func TestSyncRunMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Result *hotpotato.Result `json:"result"`
		Error  string            `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error != "" || envelope.Result == nil {
		t.Fatalf("unexpected envelope: %s", body)
	}

	var spec hotpotato.RunSpec
	if err := json.Unmarshal([]byte(quickSpecJSON), &spec); err != nil {
		t.Fatal(err)
	}
	want, err := hotpotato.ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want.SchedulerHostTime = 0
	envelope.Result.SchedulerHostTime = 0
	if !reflect.DeepEqual(want, envelope.Result) {
		t.Errorf("served result diverged from in-process run:\nwant %+v\ngot  %+v", want, envelope.Result)
	}
}

// TestConcurrentRequestsSharePlatform asserts the platform caching property:
// concurrent requests for the same chip trigger exactly one platform
// construction. The specs differ per request (distinct work scales), so the
// result cache cannot coalesce them upstream — every request must reach the
// platform cache.
func TestConcurrentRequestsSharePlatform(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4})

	const requests = 4
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := strings.Replace(quickSpecJSON, `"work_scale": 0.3`,
				fmt.Sprintf(`"work_scale": 0.%d`, i+1), 1)
			resp, body := postJSON(t, ts.URL+"/v1/run", spec)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	hits, misses := svc.Cache().Stats()
	if misses != 1 {
		t.Errorf("want exactly 1 platform construction, got %d (hits %d)", misses, hits)
	}
	if hits != requests-1 {
		t.Errorf("want %d cache hits, got %d", requests-1, hits)
	}
}

// TestDefaultSolverApplied checks the service-level solver default: a spec
// leaving platform.thermal.solver empty picks up Config.DefaultSolver (and
// runs), a spec naming its own solver is left alone, and a bogus default is
// reported per request as a 400.
func TestDefaultSolverApplied(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, DefaultSolver: "sparse"})

	resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// The defaulted solver is part of the cache key, so the cached platform
	// must carry it.
	if n := svc.Cache().Len(); n != 1 {
		t.Fatalf("want 1 cached platform, got %d", n)
	}

	// An explicit client choice wins over the server default: a dense spec
	// for the same chip is a different cache entry.
	denseSpec := strings.Replace(quickSpecJSON,
		`"width": 4, "height": 4`, `"width": 4, "height": 4, "thermal": {"solver": "dense"}`, 1)
	resp, body = postJSON(t, ts.URL+"/v1/run", denseSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-solver status %d: %s", resp.StatusCode, body)
	}
	if n := svc.Cache().Len(); n != 2 {
		t.Errorf("explicit solver should cache separately from the default: %d entries", n)
	}

	_, tsBad := newTestServer(t, Config{Workers: 1, DefaultSolver: "cholmod"})
	resp, body = postJSON(t, tsBad.URL+"/v1/run", quickSpecJSON)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus default solver: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("cholmod")) {
		t.Errorf("400 body does not name the bad solver: %s", body)
	}
}

func TestValidationErrorsAreBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/run",
		`{"scheduler": {"name": "no-such"}, "workload": {"kind": "bogus"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// errors.Join: both problems reported in one round trip.
	for _, fragment := range []string{"no-such", "bogus"} {
		if !bytes.Contains(body, []byte(fragment)) {
			t.Errorf("400 body does not mention %q: %s", fragment, body)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Status != JobQueued {
		t.Fatalf("unexpected submission response: %s", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == JobDone {
			break
		}
		if job.Status == JobFailed || job.Status == JobCanceled {
			t.Fatalf("job ended as %s: %s", job.Status, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.Result == nil || job.Result.Makespan <= 0 {
		t.Errorf("done job has no plausible result: %+v", job.Result)
	}

	resp, _ = getJSON(t, ts.URL+"/v1/jobs/job-does-not-exist")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
}

// TestQueueOverflowAnswers429 fills the single worker and the depth-1 queue,
// then checks the next submission is rejected with 429, not queued or hung.
func TestQueueOverflowAnswers429(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	statuses := make([]int, 3)
	for i := range statuses {
		resp, _ := postJSON(t, ts.URL+"/v1/jobs", longSpecJSON)
		statuses[i] = resp.StatusCode
	}
	if statuses[0] != http.StatusAccepted {
		t.Fatalf("first job rejected: %d", statuses[0])
	}
	if statuses[2] != http.StatusTooManyRequests {
		t.Fatalf("queue overflow not rejected: statuses %v", statuses)
	}

	// Shutdown must cancel the still-running job within its drain budget:
	// the run context aborts the simulation mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = svc.Shutdown(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("shutdown took %s; force-cancel did not reach the running simulation", elapsed)
	}
}

// TestSyncCancellationAbandonsRun checks a disconnected client stops its
// simulation: the handler returns promptly and the worker slot frees up.
func TestSyncCancellationAbandonsRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(longSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}

	// The single worker slot must become available again quickly: a fast
	// follow-up run proves the cancelled simulation released it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follow-up run: status %d: %s", resp.StatusCode, body)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker slot never freed after client disconnect")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("unexpected health: %s", body)
	}
}

// TestShutdownRejectsNewWork checks the intake closes while a drain is in
// progress.
func TestShutdownRejectsNewWork(t *testing.T) {
	svc := New(Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/run", "/v1/jobs"} {
		resp, _ := postJSON(t, ts.URL+path, quickSpecJSON)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s after shutdown: status %d", path, resp.StatusCode)
		}
	}
}

// TestEvictTerminalSparesLiveJobs pins the eviction predicate at the store
// level: only jobs that were terminal at or before the cutoff go; queued,
// running and recently-finished jobs all survive.
func TestEvictTerminalSparesLiveJobs(t *testing.T) {
	store := newJobStore()
	var spec hotpotato.RunSpec

	queued := store.create(spec, "")
	running := store.create(spec, "")
	running.setStatus(JobRunning)
	oldDone := store.create(spec, "")
	oldDone.finish(JobDone, nil, nil, nil)
	oldFailed := store.create(spec, "")
	oldFailed.finish(JobFailed, nil, nil, context.Canceled)
	freshDone := store.create(spec, "")
	freshDone.finish(JobDone, nil, nil, nil)
	freshDone.mu.Lock()
	freshDone.doneAt = time.Now().Add(time.Hour) // "finished in the future" = after any cutoff
	freshDone.mu.Unlock()

	if n := store.evictTerminal(time.Now()); n != 2 {
		t.Fatalf("evicted %d jobs, want 2 (the stale done + failed)", n)
	}
	for _, keep := range []*jobState{queued, running, freshDone} {
		if _, ok := store.get(keep.job.ID); !ok {
			t.Errorf("job %s (%s) was evicted but should survive", keep.job.ID, keep.snapshot().Status)
		}
	}
	for _, gone := range []*jobState{oldDone, oldFailed} {
		if _, ok := store.get(gone.job.ID); ok {
			t.Errorf("stale terminal job %s still in store", gone.job.ID)
		}
	}
}

// TestJanitorEvictsFinishedJobs is the leak regression test: with a short
// retention, a completed async job must eventually answer 404, while a job
// that is still running is never touched.
func TestJanitorEvictsFinishedJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, JobRetention: 50 * time.Millisecond})

	// A job slow enough (in host time) to still be running when the quick
	// one below has finished, aged out and been evicted.
	hugeSpecJSON := strings.Replace(longSpecJSON, `"work_scale": 100`, `"work_scale": 100000`, 1)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", hugeSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long job: status %d: %s", resp.StatusCode, body)
	}
	var longJob Job
	if err := json.Unmarshal(body, &longJob); err != nil {
		t.Fatal(err)
	}

	// A quick job that finishes and should then age out.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quick job: status %d: %s", resp.StatusCode, body)
	}
	var quickJob Job
	if err := json.Unmarshal(body, &quickJob); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+quickJob.ID)
		if resp.StatusCode == http.StatusNotFound {
			break // evicted after finishing — the leak is plugged
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &quickJob); err != nil {
			t.Fatal(err)
		}
		if s := quickJob.Status; s == JobFailed || s == JobCanceled {
			t.Fatalf("quick job ended as %s: %s", s, quickJob.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("finished job never evicted (still %s)", quickJob.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight job outlived many retention periods and must still be
	// queryable.
	resp, body = getJSON(t, ts.URL+"/v1/jobs/"+longJob.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("running job evicted: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &longJob); err != nil {
		t.Fatal(err)
	}
	if longJob.Status.Terminal() {
		t.Fatalf("long job unexpectedly terminal: %+v", longJob)
	}
}

// TestNegativeRetentionKeepsJobsForever checks the opt-out: JobRetention < 0
// runs no janitor, so finished jobs stay queryable.
func TestNegativeRetentionKeepsJobsForever(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRetention: -1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !job.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
	}
	// Far longer than any plausible sweep interval would need.
	time.Sleep(100 * time.Millisecond)
	if resp, _ = getJSON(t, ts.URL+"/v1/jobs/"+job.ID); resp.StatusCode != http.StatusOK {
		t.Errorf("job evicted despite retention disabled: status %d", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestWithDefaultsLeavesSolverEmpty pins the invariant the solver-default
// unification rests on: WithDefaults (and so Expand, which applies it per
// cell) never fills platform.thermal.solver. If a future default changed
// that, fabric.ApplyDefaultSolver would become a no-op everywhere and the
// -solver flag would silently die — this test makes that loud.
func TestWithDefaultsLeavesSolverEmpty(t *testing.T) {
	var spec hotpotato.RunSpec
	if err := json.Unmarshal([]byte(quickSpecJSON), &spec); err != nil {
		t.Fatal(err)
	}
	if got := spec.WithDefaults().Platform.Thermal.Solver; got != "" {
		t.Fatalf("WithDefaults set solver %q; the service-level default would never apply", got)
	}

	sweep := hotpotato.SweepSpec{Base: spec}
	cells, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if got := cell.Spec.Platform.Thermal.Solver; got != "" {
			t.Fatalf("Expand set solver %q on cell %d", got, cell.Index)
		}
	}

	// And the helper itself: fills empty, respects explicit.
	fabric.ApplyDefaultSolver(&spec, "dense")
	if spec.Platform.Thermal.Solver != "dense" {
		t.Fatal("ApplyDefaultSolver did not fill an empty solver")
	}
	fabric.ApplyDefaultSolver(&spec, "sparse")
	if spec.Platform.Thermal.Solver != "dense" {
		t.Fatal("ApplyDefaultSolver overwrote an explicit solver")
	}
}
