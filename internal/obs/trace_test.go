package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func ev(i int) EpochEvent {
	return EpochEvent{
		Epoch:     i,
		Time:      float64(i) * 0.5e-3,
		Mapping:   map[string]int{"0:0": i % 4},
		Freqs:     []float64{4e9, 4e9},
		CoreTemps: []float64{50, 60},
		PeakTemp:  60,
	}
}

func TestRingTracerKeepsOrderBelowCapacity(t *testing.T) {
	tr := NewRingTracer(8)
	for i := 0; i < 5; i++ {
		tr.RecordEpoch(ev(i))
	}
	got := tr.Events()
	if len(got) != 5 || tr.Len() != 5 || tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	for i, e := range got {
		if e.Epoch != i {
			t.Errorf("event %d has epoch %d", i, e.Epoch)
		}
	}
}

func TestRingTracerOverwritesOldest(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.RecordEpoch(ev(i))
	}
	got := tr.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := 6 + i; e.Epoch != want {
			t.Errorf("event %d has epoch %d, want %d", i, e.Epoch, want)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total=%d dropped=%d, want 10/6", tr.Total(), tr.Dropped())
	}
}

func TestRingTracerDefaultCapacity(t *testing.T) {
	tr := NewRingTracer(0)
	if c := cap(tr.events); c != DefaultTraceDepth {
		t.Errorf("capacity = %d, want %d", c, DefaultTraceDepth)
	}
}

func TestRingTracerConcurrentReadWhileRecording(t *testing.T) {
	// The service reads a job's trace while the run records; -race guards this.
	tr := NewRingTracer(16)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tr.RecordEpoch(ev(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			evs := tr.Events()
			for j := 1; j < len(evs); j++ {
				if evs[j].Epoch != evs[j-1].Epoch+1 {
					t.Errorf("events out of order: %d after %d", evs[j].Epoch, evs[j-1].Epoch)
					return
				}
			}
		}
	}()
	wg.Wait()
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tr := NewRingTracer(8)
	for i := 0; i < 3; i++ {
		tr.RecordEpoch(ev(i))
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var e EpochEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if e.Epoch != n || e.Mapping["0:0"] != n%4 {
			t.Errorf("line %d decoded to %+v", n, e)
		}
		n++
	}
	if n != 3 {
		t.Errorf("wrote %d lines, want 3", n)
	}
}
