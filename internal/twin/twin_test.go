package twin

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testModel builds a small structurally-valid artifact by hand (a 2×2 bucket;
// the numbers are arbitrary but finite). The fitted-against-simulator models
// are exercised by the root package's differential suite — here we only need
// something Validate accepts.
func testModel(t *testing.T) *Model {
	t.Helper()
	bucket := BucketModel{
		Width: 2, Height: 2, Ambient: 45,
		Kernel:       []float64{1, 0.5, 0.25, 0.1, 0.05}, // kernelDim(2,2) = 5
		SteadyBoundC: 1.5,
		Transient:    FieldModel{Coef: []float64{0.1, 1, 0.2, 0.3, 0.4}, Bound: 2},
		Makespan:     FieldModel{Coef: []float64{0, 1}, Bound: 0.01},
		Ring:         FieldModel{Coef: []float64{0.1, 1, 0.01, 0.2, 0.3, 0.4, 0.5}, Bound: 1.25},
		Samples:      64, RingSamples: 64,
		MinTotalW: 1, MaxTotalW: 100,
		MaxTauS: 0.004, RingMinW: 1, RingMaxW: 100,
	}
	m := &Model{
		Version: ModelVersion,
		Seed:    1,
		Buckets: map[string]BucketModel{BucketKey(2, 2): bucket},
	}
	hash, err := m.ComputeHash()
	if err != nil {
		t.Fatalf("ComputeHash: %v", err)
	}
	m.Hash = hash
	if err := m.Validate(); err != nil {
		t.Fatalf("hand-built model does not validate: %v", err)
	}
	return m
}

func TestModelEncodeLoadRoundTrip(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	again, err := m.Encode()
	if err != nil {
		t.Fatalf("second Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Error("Encode is not deterministic")
	}
	back, err := Load(data)
	if err != nil {
		t.Fatalf("Load of Encode output: %v", err)
	}
	if back.Hash != m.Hash {
		t.Errorf("round trip changed hash: %s vs %s", back.Hash, m.Hash)
	}
	data2, err := back.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("Encode → Load → Encode changed bytes")
	}
}

func TestModelLoadRejectsCorruption(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"not json":  []byte("not json"),
		"truncated": data[:len(data)/2],
		"tampered":  bytes.Replace(data, []byte(`"seed": 1`), []byte(`"seed": 2`), 1),
		"bad version": bytes.Replace(data,
			[]byte(`"version": "`+ModelVersion+`"`), []byte(`"version": "twin-v0"`), 1),
		"no buckets": []byte(`{"version": "` + ModelVersion + `", "hash": "", "seed": 1, "buckets": {}}`),
	}
	for name, corrupt := range cases {
		if _, err := Load(corrupt); err == nil {
			t.Errorf("Load(%s) accepted corrupt input", name)
		}
	}
}

func TestModelHashCoversContent(t *testing.T) {
	m := testModel(t)
	h1, _ := m.ComputeHash()
	if !strings.HasPrefix(h1, "sha256:") {
		t.Errorf("hash %q lacks sha256: prefix", h1)
	}
	m.Seed = 99
	h2, _ := m.ComputeHash()
	if h1 == h2 {
		t.Error("hash did not change with content")
	}
	// The embedded hash itself is excluded, so stamping it is stable.
	m.Hash = h2
	h3, _ := m.ComputeHash()
	if h2 != h3 {
		t.Error("hash depends on the Hash field")
	}
}

func TestTailFactor(t *testing.T) {
	if got := tailFactor(tailTarget); got != 1 {
		t.Errorf("tailFactor(%d) = %g, want 1 (clamped)", tailTarget, got)
	}
	if got := tailFactor(tailTarget * 10); got != 1 {
		t.Errorf("tailFactor clamps below 1: got %g", got)
	}
	prev := math.Inf(1)
	for _, m := range []int{2, 4, 16, 64, 256, 1000} {
		f := tailFactor(m)
		if f < 1 {
			t.Errorf("tailFactor(%d) = %g < 1", m, f)
		}
		if f > prev {
			t.Errorf("tailFactor not non-increasing at m=%d: %g > %g", m, f, prev)
		}
		prev = f
	}
	// Degenerate validation windows fall back to the harshest factor.
	if got, want := tailFactor(1), math.Log(tailTarget)/math.Log(2); got != want {
		t.Errorf("tailFactor(1) = %g, want %g", got, want)
	}
	// m=32 held out: ln(1000)/ln(32) ≈ 1.993.
	if got := tailFactor(32); math.Abs(got-1.993) > 0.01 {
		t.Errorf("tailFactor(32) = %g, want ≈1.993", got)
	}
}

func TestLevelsFor(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{0, nil}, {7, nil}, {8, []int{8}}, {15, []int{8}},
		{64, []int{8, 16, 32, 64}}, {100, []int{8, 16, 32, 64}},
		{192, []int{8, 16, 32, 64, 128}},
	}
	for _, c := range cases {
		got := levelsFor(c.n)
		if len(got) != len(c.want) {
			t.Errorf("levelsFor(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("levelsFor(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestMinSamplesForDim(t *testing.T) {
	// Level L fits on L/2 rows, needing minRowsPerCoef rows per coefficient.
	for _, c := range []struct{ dim, want int }{
		{1, 8}, {2, 16}, {makespanDim, 16}, {transientDim, 64}, {ringDim, 64},
	} {
		if got := minSamplesForDim(c.dim); got != c.want {
			t.Errorf("minSamplesForDim(%d) = %d, want %d", c.dim, got, c.want)
		}
	}
	// The returned level really is eligible: fit half ≥ minRowsPerCoef·dim.
	for dim := 1; dim <= 16; dim++ {
		l := minSamplesForDim(dim)
		if l/2 < minRowsPerCoef*dim {
			t.Errorf("minSamplesForDim(%d) = %d: fit half %d < %d", dim, l, l/2, minRowsPerCoef*dim)
		}
	}
}

func TestMissingNeighbors(t *testing.T) {
	// 4×4: four corners miss 2 neighbors, eight edge cores miss 1, four
	// interior cores miss 0 — 16 total missing edges around the die.
	w, h := 4, 4
	sum := 0
	for i := 0; i < w*h; i++ {
		sum += missingNeighbors(w, h, i)
	}
	if want := 2*w + 2*h; sum != want {
		t.Errorf("4x4 total missing neighbors = %d, want %d", sum, want)
	}
	if got := missingNeighbors(w, h, 0); got != 2 {
		t.Errorf("corner: got %d, want 2", got)
	}
	if got := missingNeighbors(w, h, 1); got != 1 {
		t.Errorf("edge: got %d, want 1", got)
	}
	if got := missingNeighbors(w, h, 5); got != 0 {
		t.Errorf("interior: got %d, want 0", got)
	}
	// A 1×1 die has no neighbors at all.
	if got := missingNeighbors(1, 1, 0); got != 4 {
		t.Errorf("1x1: got %d, want 4", got)
	}
}

func TestKernelDim(t *testing.T) {
	for _, c := range []struct{ w, h, want int }{
		{2, 2, 5}, {4, 4, 9}, {8, 8, 17}, {1, 1, 3},
	} {
		if got := kernelDim(c.w, c.h); got != c.want {
			t.Errorf("kernelDim(%d,%d) = %d, want %d", c.w, c.h, got, c.want)
		}
	}
}

func TestSteadyPeakDeltaEdgeTerms(t *testing.T) {
	// Self-only kernel with explicit edge terms on a 2×2 die (every core a
	// corner, e=2): rise_i = k0·p_i + 2·(kSelf·p_i + kTotal·Σp).
	b := BucketModel{
		Width: 2, Height: 2,
		Kernel: []float64{1, 0, 0, 0.5, 0.25}, // k0=1, d1=d2=0, kSelf=0.5, kTotal=0.25
	}
	p := []float64{1, 2, 3, 4}
	want := 4.0 + 2*(0.5*4+0.25*10) // hottest core: p=4, total=10
	if got := b.steadyPeakDelta(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("steadyPeakDelta = %g, want %g", got, want)
	}
}

func TestPredictUnknownBucket(t *testing.T) {
	m := testModel(t)
	c := Case{
		Width: 3, Height: 3, Ambient: 45,
		HotPower:        make([]float64, 9),
		AvgPower:        make([]float64, 9),
		SteadyHotDeltaC: 1, SteadyAvgDeltaC: 1,
		Horizon: 0.01, RawMakespan: 0.01,
	}
	for i := range c.HotPower {
		c.HotPower[i], c.AvgPower[i] = 1, 1
	}
	if _, err := m.Predict(c); err == nil {
		t.Error("Predict answered for an uncalibrated bucket")
	}
}

func TestPredictEnvelopeGate(t *testing.T) {
	m := testModel(t)
	mk := func(watts float64) Case {
		c := Case{
			Width: 2, Height: 2, Ambient: 45,
			HotPower:        []float64{watts, watts, watts, watts},
			AvgPower:        []float64{watts, watts, watts, watts},
			SteadyHotDeltaC: 1, SteadyAvgDeltaC: 1,
			Horizon: 0.01, RawMakespan: 0.01,
		}
		return c
	}
	in, err := m.Predict(mk(5)) // total 20 W, inside [1, 100]
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if !in.SteadyPeakC.Conclusive || !in.TransientPeakC.Conclusive || !in.MakespanS.Conclusive {
		t.Error("in-envelope case marked inconclusive")
	}
	out, err := m.Predict(mk(50)) // total 200 W, outside 100·1.1
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if out.SteadyPeakC.Conclusive || out.TransientPeakC.Conclusive || out.MakespanS.Conclusive {
		t.Error("out-of-envelope case marked conclusive")
	}
}
