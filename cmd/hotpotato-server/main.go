// Command hotpotato-server is the simulation service: an HTTP/JSON daemon
// that accepts declarative RunSpec documents and executes them on a bounded
// worker pool, sharing thermal models between requests.
//
//	hotpotato-server -addr :8080
//	curl -X POST localhost:8080/v1/run -d '{
//	  "platform":  {"width": 4, "height": 4},
//	  "scheduler": {"name": "hotpotato"},
//	  "workload":  {"kind": "homogeneous", "bench": "blackscholes", "total_threads": 4}
//	}'
//
// Logging is structured (log/slog) on stderr — JSON by default, one object
// per line with a request_id on every request-scoped record — and every run
// is span-traced end to end (GET /v1/jobs/{id}/spans). See docs/SERVICE.md
// for the endpoints and the RunSpec schema, docs/OBSERVABILITY.md for the
// log schema and span semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "async job queue depth (0 = 64)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before in-flight runs are cancelled")
	retention := flag.Duration("job-retention", 0, "how long finished async jobs stay queryable (0 = 10m, negative = keep forever)")
	traceDepth := flag.Int("trace-depth", 0, "scheduler epochs retained per async job for /v1/jobs/{id}/trace (0 = 4096, negative = disable)")
	spanDepth := flag.Int("span-depth", 0, "spans retained per async job for /v1/jobs/{id}/spans (0 = 8192, negative = disable)")
	solver := flag.String("solver", "", "default thermal solver for specs that leave platform.thermal.solver empty: auto|dense|sparse")
	twinModel := flag.String("twin-model", "", "analytical-twin calibration artifact (TWIN_model.json) backing POST /v1/predict and sweep pruning; empty disables both")
	resultCache := flag.Int("result-cache-entries", 0, "content-addressed result cache capacity in entries (0 = 256, negative = disable)")
	maxSweepCells := flag.Int("max-sweep-cells", 0, "largest sweep cross-product /v1/batch accepts (0 = 1024)")
	batchHeartbeat := flag.Duration("batch-heartbeat", 0, "interval between /v1/batch progress records (0 = 10s, negative = disable)")
	dispatcher := flag.String("dispatcher", "", "fabric dispatcher base URL; when set the server also runs a sweep-fabric worker pull loop against it")
	workerID := flag.String("worker-id", "", "fabric worker identity offered at registration (empty = dispatcher-assigned)")
	leaseCells := flag.Int("lease-cells", 0, "sweep cells requested per fabric lease (0 = dispatcher default)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "json", "log format: json|text")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	readHeader := flag.Duration("read-header-timeout", 5*time.Second, "limit on reading request headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "limit on reading a full request including the body")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection limit")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := hotpotato.ValidateSolver(*solver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var twin *hotpotato.TwinModel
	if *twinModel != "" {
		twin, err = hotpotato.LoadTwinModelFile(*twinModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		logger.Info("twin model loaded", "path", *twinModel, "hash", twin.Hash)
	}

	svc := service.New(service.Config{
		Workers: *workers, QueueDepth: *queue,
		JobRetention: *retention, TraceDepth: *traceDepth, SpanDepth: *spanDepth,
		DefaultSolver:      *solver,
		ResultCacheEntries: *resultCache,
		MaxSweepCells:      *maxSweepCells,
		BatchHeartbeat:     *batchHeartbeat,
		Logger:             logger,
		TwinModel:          twin,
	})
	handler := svc.Handler()
	if *enablePprof {
		// Behind a flag: the profiling endpoints expose internals and cost
		// CPU, so an operator opts in per deployment.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	// No WriteTimeout: synchronous /v1/run responses legitimately take as
	// long as the simulation they carry.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeader,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idle,
	}

	// Worker mode rides alongside serving: the pull loop plugs the service's
	// cache-consulting cell executor into the fabric, so leased cells share
	// the result cache (and worker semaphore) with local /v1 traffic. The
	// worker never applies this server's -solver to fabric cells — the
	// dispatcher finalized every spec before leasing.
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	workerDone := make(chan struct{})
	close(workerDone)
	if *dispatcher != "" {
		fw := &fabric.Worker{
			Dispatcher: *dispatcher,
			ID:         *workerID,
			LeaseCells: *leaseCells,
			Exec:       svc.ExecuteCell,
			// Leased cells that close a /v1/predict drift check report the
			// residual back so the dispatcher's per-sweep status carries a
			// fleet-wide twin-drift tally.
			Drift:  svc.TakeDriftReport,
			Logger: logger,
		}
		workerDone = make(chan struct{})
		go func() {
			defer close(workerDone)
			fw.Run(workerCtx)
		}()
		logger.Info("fabric worker mode enabled", "dispatcher", *dispatcher)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("hotpotato-server listening", "addr", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "budget", drain.String())
	}

	// Stop leasing new fabric work before draining: in-flight leased cells
	// finish (or cancel) with the service drain below.
	stopWorker()
	<-workerDone

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "error", err.Error())
	}
	if err := svc.Shutdown(ctx); err != nil {
		logger.Warn("service drain expired, in-flight runs were cancelled", "error", err.Error())
	}
	logger.Info("bye")
}
