package twin

import (
	"fmt"
	"math"
)

// SteadyPeakFunc returns the exact steady-state peak temperature rise (K) of
// a per-core power field — a closed-form linear solve against the platform's
// thermal model (the root package builds one from the cached core-influence
// matrix). The ring model's strongest regressor is this quasi-steady rise of
// the rotation's time-averaged field, so the estimator needs the solve at
// prediction time. Implementations must not allocate and must not retain the
// field slice.
type SteadyPeakFunc func(field []float64) float64

// RingEstimator is the scheduler-facing view of one bucket's ring model: a
// goroutine-confined evaluator with preallocated scratch, so estimating a
// ring peak allocates nothing on the hot path (the same discipline as
// rotation.RingEvaluator). It implements the sched.RingPeakEstimator
// contract: an estimate, its conservative bound, and whether the bound is
// backed by calibration evidence — the scheduler must fall back to the exact
// Algorithm 1 evaluation whenever conclusive is false.
type RingEstimator struct {
	bucket     BucketModel
	steadyPeak SteadyPeakFunc
	x          [ringDim]float64
	field      []float64
}

// NewRingEstimator builds an estimator for one platform-size bucket.
// steadyPeak must evaluate the exact steady peak rise of a width×height
// per-core field on the platform the estimator will serve. Like
// rotation.RingEvaluator, the result is confined to a single goroutine.
func NewRingEstimator(m *Model, width, height int, steadyPeak SteadyPeakFunc) (*RingEstimator, error) {
	key := BucketKey(width, height)
	b, ok := m.Buckets[key]
	if !ok {
		return nil, fmt.Errorf("twin: no calibrated bucket %q for ring estimation", key)
	}
	if steadyPeak == nil {
		return nil, fmt.Errorf("twin: ring estimator needs a steady-peak evaluator")
	}
	return &RingEstimator{
		bucket:     b,
		steadyPeak: steadyPeak,
		field:      make([]float64, width*height),
	}, nil
}

// Bound returns the estimator's confidence bound in °C.
func (e *RingEstimator) Bound() float64 { return e.bucket.Ring.Bound }

// EstimateRingPeak predicts the steady-periodic peak temperature (°C) of one
// ring rotation: epoch tau, per-core background field base, rotating cores
// ringCores carrying slotWatts. It returns the estimate, the confidence
// bound, and whether the inputs lie inside the calibration envelope (grid
// size, tau ceiling, and time-averaged total power). On any structural
// mismatch it returns inconclusive rather than an error — the caller's exact
// path is always a safe fallback. Allocates nothing.
func (e *RingEstimator) EstimateRingPeak(tau float64, base []float64, ringCores []int, slotWatts []float64) (peakC, boundC float64, conclusive bool) {
	b := &e.bucket
	if len(base) != len(e.field) || len(ringCores) == 0 || len(slotWatts) != len(ringCores) {
		return 0, b.Ring.Bound, false
	}
	if !(tau > 0) || tau > b.MaxTauS*(1+envelopeSlack) {
		return 0, b.Ring.Bound, false
	}
	// Solve the two exact anchors the fitted model blends: the frozen-worst
	// epoch (upper) and the time-averaged field (lower). One scratch vector
	// serves both — MaxInstantSteadyDelta rebuilds it per offset.
	sfdMax := MaxInstantSteadyDelta(e.field, base, ringCores, slotWatts, e.steadyPeak)
	copy(e.field, base)
	mean := 0.0
	for _, w := range slotWatts {
		mean += w
	}
	mean /= float64(len(slotWatts))
	for _, core := range ringCores {
		e.field[core] = mean
	}
	sfd := e.steadyPeak(e.field)
	if math.IsNaN(sfd) || math.IsInf(sfd, 0) || math.IsNaN(sfdMax) || math.IsInf(sfdMax, 0) {
		return 0, b.Ring.Bound, false
	}
	ringFeaturesInto(e.x[:], e.field, RingCase{
		Width:             b.Width,
		Height:            b.Height,
		Ambient:           b.Ambient,
		Tau:               tau,
		Base:              base,
		RingCores:         ringCores,
		SlotWatts:         slotWatts,
		SteadyFieldDeltaC: sfd,
		SteadyMaxDeltaC:   sfdMax,
	})
	est := b.Ambient + dot(b.Ring.Coef, e.x[:])
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return 0, b.Ring.Bound, false
	}
	lo := b.RingMinW * (1 - envelopeSlack)
	hi := b.RingMaxW * (1 + envelopeSlack)
	ok := e.x[2] >= lo && e.x[2] <= hi
	return est, b.Ring.Bound, ok
}
