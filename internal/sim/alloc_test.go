package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// timeoutSim builds a run that is stopped by MaxTime, so two configurations
// with different TimeSlice values simulate exactly the same span with the
// same number of scheduler epochs — only the slice count differs.
func timeoutSim(t testing.TB, plat *Platform, dt float64) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TimeSlice = dt
	cfg.MaxTime = 0.05                               // 100 epochs at the default 0.5 ms cadence
	task := smallTask(t, "blackscholes", 4, 0, 1000) // cannot finish in MaxTime
	s, err := New(plat, cfg, &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The slice-level hot loop (execute threads, integrate the thermal model,
// DTM, completion scan) must be allocation-free: doubling the slice count of
// an identical simulated span must not add per-slice allocations. Per-epoch
// work (scheduler decisions, state snapshots) is identical on both sides and
// cancels out of the comparison.
func TestEngineSliceBodyDoesNotAllocate(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	const dt = 0.1e-3
	run := func(dt float64) {
		s := timeoutSim(t, plat, dt)
		if _, err := s.Run(); !errors.Is(err, ErrTimeout) {
			t.Fatalf("run with dt=%g: want ErrTimeout, got %v", dt, err)
		}
	}
	coarse := testing.AllocsPerRun(1, func() { run(dt) })
	fine := testing.AllocsPerRun(1, func() { run(dt / 2) })

	coarseSlices := 0.05 / dt
	perSlice := (fine - coarse) / coarseSlices // fine runs coarseSlices extra slices
	if perSlice > 1 {
		t.Errorf("slice body allocates: %.2f allocs per extra slice (coarse run %v, fine run %v)",
			perSlice, coarse, fine)
	}
}

// --- hot-loop epoch baseline (make bench → BENCH_hotloop.json) --------------

// BenchmarkHotloopEpoch measures the engine's epoch loop end to end: one op
// is a full 50 ms (100-epoch, 500-slice) simulation of a loaded 4×4 chip.
// allocs/op is dominated by per-epoch scheduler work; the per-slice thermal
// path contributes zero.
func BenchmarkHotloopEpoch(b *testing.B) {
	plat := testPlatform(b, 4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := timeoutSim(b, plat, 0.1e-3)
		b.StartTimer()
		if _, err := s.Run(); !errors.Is(err, ErrTimeout) {
			b.Fatal(err)
		}
	}
}

// Same differencing argument with the observability layer attached: a span
// recorder (one span per epoch) and a disabled-level slog logger in the
// context add per-epoch cost only. Both runs cover identical epoch counts, so
// epoch-level span allocations cancel and the per-slice delta must stay zero.
func TestEngineSliceBodyDoesNotAllocateWithObservability(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	const dt = 0.1e-3
	run := func(dt float64) {
		s := timeoutSim(t, plat, dt)
		rec := obs.NewSpanRecorder(1 << 10)
		root := rec.Start("run")
		ctx := obs.ContextWithSpan(context.Background(), root)
		ctx = obs.ContextWithLogger(ctx, obs.NopLogger())
		if _, err := s.RunContext(ctx); !errors.Is(err, ErrTimeout) {
			t.Fatalf("run with dt=%g: want ErrTimeout, got %v", dt, err)
		}
		root.End()
	}
	coarse := testing.AllocsPerRun(1, func() { run(dt) })
	fine := testing.AllocsPerRun(1, func() { run(dt / 2) })

	coarseSlices := 0.05 / dt
	perSlice := (fine - coarse) / coarseSlices
	if perSlice > 1 {
		t.Errorf("slice body allocates under tracing: %.2f allocs per extra slice (coarse %v, fine %v)",
			perSlice, coarse, fine)
	}
}
