package power

import "fmt"

// History is a sliding time-weighted window of power samples. HotPotato's
// Algorithm 1 uses "the power history of a thread from the last 10 ms" (§V)
// to estimate the power a rotation will impose on each core.
//
// Record is on the simulator's per-slice hot path (one call per live thread
// per slice), so the window is kept in a compacting buffer: evicted samples
// advance a head index, and a full buffer is compacted in place instead of
// growing — once the capacity covers window/duration samples, Record never
// allocates again.
type History struct {
	window  float64
	entries []sample
	head    int     // entries[head:] are the live samples, oldest first
	total   float64 // sum of durations currently held
}

type sample struct {
	duration float64
	watts    float64
}

// DefaultWindow is the paper's 10 ms history window.
const DefaultWindow = 10e-3

// NewHistory creates a history covering the most recent `window` seconds.
func NewHistory(window float64) (*History, error) {
	if window <= 0 {
		return nil, fmt.Errorf("power: history window must be positive, got %g", window)
	}
	return &History{window: window}, nil
}

// Window returns the configured window length in seconds.
func (h *History) Window() float64 { return h.window }

// Record appends a sample of `watts` lasting `duration` seconds and evicts
// samples that have slid out of the window.
func (h *History) Record(duration, watts float64) {
	if duration <= 0 {
		return
	}
	// Reclaim the evicted prefix before append would grow the buffer.
	if len(h.entries) == cap(h.entries) && h.head > 0 {
		n := copy(h.entries, h.entries[h.head:])
		h.entries = h.entries[:n]
		h.head = 0
	}
	h.entries = append(h.entries, sample{duration, watts})
	h.total += duration
	// Evict whole samples from the front; trim the boundary sample so the
	// window is honoured exactly.
	for h.total > h.window && h.head < len(h.entries) {
		excess := h.total - h.window
		head := &h.entries[h.head]
		if head.duration <= excess {
			h.total -= head.duration
			h.head++
		} else {
			head.duration -= excess
			h.total -= excess
		}
	}
}

// Average returns the time-weighted mean power over the recorded window. If
// nothing has been recorded it returns fallback.
func (h *History) Average(fallback float64) float64 {
	if h.total <= 0 {
		return fallback
	}
	var energy float64
	for _, s := range h.entries[h.head:] {
		energy += s.duration * s.watts
	}
	return energy / h.total
}

// Span returns how many seconds of samples the history currently holds
// (≤ Window).
func (h *History) Span() float64 { return h.total }

// Reset discards all samples.
func (h *History) Reset() {
	h.entries = h.entries[:0]
	h.head = 0
	h.total = 0
}
