package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/noc"
)

func testHierarchy(t testing.TB, w, h int) *Hierarchy {
	t.Helper()
	fp := floorplan.MustNew(w, h, 0.0009)
	net, err := noc.New(fp, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hier, err := New(net, fp.NumCores(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return hier
}

func TestNewValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	net, _ := noc.New(fp, noc.DefaultConfig())
	bad := []Config{
		{L1IKB: 0, L1DKB: 16, LLCPerCoreKB: 128, BlockBytes: 64},
		{L1IKB: 16, L1DKB: 16, LLCPerCoreKB: 0, BlockBytes: 64},
		{L1IKB: 16, L1DKB: 16, LLCPerCoreKB: 128, BlockBytes: 0},
		func() Config { c := DefaultConfig(); c.DirtyFraction = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.WarmFraction = -0.1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(net, 4, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(net, 0, DefaultConfig()); err == nil {
		t.Error("expected error for zero cores")
	}
}

func TestHomeBankInterleaves(t *testing.T) {
	h := testHierarchy(t, 4, 4)
	// Consecutive lines (64 B apart) land on consecutive banks.
	for line := 0; line < 32; line++ {
		addr := uint64(line * 64)
		if got, want := h.HomeBank(addr), line%16; got != want {
			t.Fatalf("HomeBank(line %d) = %d, want %d", line, got, want)
		}
	}
}

func TestHomeBankSameLineSameBank(t *testing.T) {
	h := testHierarchy(t, 4, 4)
	// All addresses within one 64 B line map to the same bank.
	base := uint64(4096)
	want := h.HomeBank(base)
	for off := uint64(0); off < 64; off++ {
		if got := h.HomeBank(base + off); got != want {
			t.Fatalf("HomeBank(base+%d) = %d, want %d", off, got, want)
		}
	}
}

func TestPrivateLinesTableI(t *testing.T) {
	// Table I: 16+16 KB of private L1 at 64 B lines = 512 lines.
	h := testHierarchy(t, 4, 4)
	if got := h.PrivateLines(); got != 512 {
		t.Errorf("PrivateLines = %d, want 512", got)
	}
}

func TestLLCLinesTableI(t *testing.T) {
	// 128 KB per core × 16 cores / 64 B = 32768 lines.
	h := testHierarchy(t, 4, 4)
	if got := h.LLCLines(); got != 32768 {
		t.Errorf("LLCLines = %d, want 32768", got)
	}
}

func TestMigrationPenaltyPositiveAndSmall(t *testing.T) {
	// The observation motivating the paper: S-NUCA migration costs tens of
	// microseconds, far below a 0.5 ms rotation epoch.
	h := testHierarchy(t, 8, 8)
	p := h.MigrationPenalty(0, 63)
	if p <= 0 {
		t.Fatalf("penalty = %v, want > 0", p)
	}
	if p >= 0.5e-3 {
		t.Fatalf("penalty %v s not small relative to 0.5 ms epoch", p)
	}
	if p < 1e-6 {
		t.Fatalf("penalty %v s implausibly small (< 1 µs)", p)
	}
}

func TestMigrationPenaltyGrowsWithAMD(t *testing.T) {
	// Migrating to a high-AMD (corner) core costs more refill time than to a
	// low-AMD (centre) core.
	h := testHierarchy(t, 8, 8)
	fp := floorplan.MustNew(8, 8, 0.0009)
	center := fp.ID(3, 3)
	corner := fp.ID(0, 0)
	src := fp.ID(4, 4)
	if h.MigrationPenalty(src, corner) <= h.MigrationPenalty(src, center) {
		t.Errorf("penalty to corner %v not > penalty to centre %v",
			h.MigrationPenalty(src, corner), h.MigrationPenalty(src, center))
	}
}

func TestMigrationPenaltyMatrixDiagonalZero(t *testing.T) {
	h := testHierarchy(t, 4, 4)
	m := h.MigrationPenaltyMatrix()
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("self-migration penalty [%d][%d] = %v, want 0", i, i, m[i][i])
		}
		for j := range m[i] {
			if i != j && m[i][j] <= 0 {
				t.Fatalf("penalty [%d][%d] = %v, want > 0", i, j, m[i][j])
			}
		}
	}
}

// Property: HomeBank is total and uniform-ish — every bank owns at least one
// of the first n consecutive lines.
func TestPropHomeBankCoversAllBanks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(6)
		fp := floorplan.MustNew(w, w, 0.0009)
		net, err := noc.New(fp, noc.DefaultConfig())
		if err != nil {
			return false
		}
		h, err := New(net, fp.NumCores(), DefaultConfig())
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for line := 0; line < fp.NumCores(); line++ {
			b := h.HomeBank(uint64(line) * 64)
			if b < 0 || b >= fp.NumCores() {
				return false
			}
			seen[b] = true
		}
		return len(seen) == fp.NumCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: migration penalty scales monotonically with the dirty and warm
// fractions.
func TestPropPenaltyMonotoneInFractions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fp := floorplan.MustNew(4, 4, 0.0009)
		net, err := noc.New(fp, noc.DefaultConfig())
		if err != nil {
			return false
		}
		lo := DefaultConfig()
		hi := DefaultConfig()
		lo.DirtyFraction = r.Float64() * 0.5
		hi.DirtyFraction = lo.DirtyFraction + 0.3
		lo.WarmFraction = r.Float64() * 0.5
		hi.WarmFraction = lo.WarmFraction + 0.3
		hl, err1 := New(net, 16, lo)
		hh, err2 := New(net, 16, hi)
		if err1 != nil || err2 != nil {
			return false
		}
		src := r.Intn(16)
		dst := r.Intn(16)
		if src == dst {
			return true
		}
		return hh.MigrationPenalty(src, dst) > hl.MigrationPenalty(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOSOverheadValidationAndEffect(t *testing.T) {
	fp := floorplan.MustNew(4, 4, 0.0009)
	net, _ := noc.New(fp, noc.DefaultConfig())
	bad := DefaultConfig()
	bad.OSOverhead = -1e-6
	if _, err := New(net, 16, bad); err == nil {
		t.Error("expected error for negative OS overhead")
	}
	lo := DefaultConfig()
	lo.OSOverhead = 0
	hi := DefaultConfig()
	hi.OSOverhead = 50e-6
	hl, _ := New(net, 16, lo)
	hh, _ := New(net, 16, hi)
	if hh.MigrationPenalty(0, 5)-hl.MigrationPenalty(0, 5) < 49e-6 {
		t.Error("OS overhead not reflected in migration penalty")
	}
}

func TestMigrationPenaltyOrderOfMagnitude(t *testing.T) {
	// Paper Fig. 2(c): rotation at 0.5 ms epochs costs ~8% — roughly 40 µs
	// per migration. Our default model must land in the same decade.
	h := testHierarchy(t, 4, 4)
	p := h.MigrationPenalty(5, 6)
	if p < 10e-6 || p > 100e-6 {
		t.Errorf("penalty = %v s, want within 10–100 µs", p)
	}
}
