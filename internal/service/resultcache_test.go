package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	hotpotato "repro"
)

func TestResultCacheLRUBound(t *testing.T) {
	c := NewResultCache(2)
	res := &hotpotato.Result{Scheduler: "hotpotato"}
	for i := 0; i < 3; i++ {
		hash := fmt.Sprintf("sha256:%02d", i)
		if _, leader := c.Lookup(hash); !leader {
			t.Fatalf("fresh hash %s did not elect a leader", hash)
		}
		c.Fulfill(hash, res, "")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, bound is 2", c.Len())
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	// The oldest entry (00) was evicted; 01 and 02 remain.
	if _, leader := c.Lookup("sha256:00"); !leader {
		t.Error("evicted entry still present")
	}
	c.Abandon("sha256:00") // release the slot the probe created
	for _, hash := range []string{"sha256:01", "sha256:02"} {
		e, leader := c.Lookup(hash)
		if leader {
			t.Errorf("%s was evicted, want retained", hash)
			c.Abandon(hash)
			continue
		}
		if got, _, ok := e.Wait(context.Background()); !ok || got != res {
			t.Errorf("%s did not replay the stored result", hash)
		}
	}
}

func TestResultCacheLRUTouchOnLookup(t *testing.T) {
	c := NewResultCache(2)
	res := &hotpotato.Result{}
	for _, h := range []string{"a", "b"} {
		c.Lookup(h)
		c.Fulfill(h, res, "")
	}
	// Touch "a" so "b" is now least recently used; inserting "c" must evict "b".
	c.Lookup("a")
	c.Lookup("c")
	c.Fulfill("c", res, "")
	if _, leader := c.Lookup("b"); !leader {
		t.Error("LRU victim was not the least recently used entry")
	}
	c.Abandon("b")
	if _, leader := c.Lookup("a"); leader {
		t.Error("recently touched entry was evicted")
		c.Abandon("a")
	}
}

func TestResultCacheSingleflight(t *testing.T) {
	c := NewResultCache(8)
	e, leader := c.Lookup("h")
	if !leader {
		t.Fatal("first lookup is not the leader")
	}
	const followers = 4
	results := make([]*hotpotato.Result, followers)
	oks := make([]bool, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fe, fleader := c.Lookup("h")
			if fleader {
				t.Error("second lookup stole leadership")
				return
			}
			results[i], _, oks[i] = fe.Wait(context.Background())
		}(i)
	}
	res := &hotpotato.Result{Scheduler: "x"}
	time.Sleep(10 * time.Millisecond) // let followers block on the entry
	c.Fulfill("h", res, "timed out")
	wg.Wait()
	_ = e
	for i := 0; i < followers; i++ {
		if !oks[i] || results[i] != res {
			t.Errorf("follower %d: ok=%v res=%p, want the leader's result", i, oks[i], results[i])
		}
	}
	// Exactly one miss for the whole flight.
	if _, misses, _ := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 for a coalesced flight", misses)
	}
}

func TestResultCacheAbandonWakesFollowers(t *testing.T) {
	c := NewResultCache(8)
	if _, leader := c.Lookup("h"); !leader {
		t.Fatal("no leader")
	}
	e, leader := c.Lookup("h")
	if leader {
		t.Fatal("follower elected leader")
	}
	done := make(chan bool, 1)
	go func() {
		_, _, ok := e.Wait(context.Background())
		done <- ok
	}()
	c.Abandon("h")
	select {
	case ok := <-done:
		if ok {
			t.Error("abandoned entry reported a valid outcome")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never woke after Abandon")
	}
	// The slot is free again: the next lookup elects a new leader.
	if _, leader := c.Lookup("h"); !leader {
		t.Error("abandoned hash did not free its slot")
	}
	c.Abandon("h")
}

func TestResultCacheWaitRespectsContext(t *testing.T) {
	c := NewResultCache(8)
	c.Lookup("h") // leader never fulfills
	e, _ := c.Lookup("h")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, ok := e.Wait(ctx); ok {
		t.Error("Wait returned ok on an expired context")
	}
	c.Abandon("h")
}

// TestRepeatedRunServedFromCache is the end-to-end acceptance test: a second
// POST /v1/run of the same document replays the cached result bit-identically
// (host-time fields aside — a cached replay has no scheduler host time of its
// own), marks the response cached, sets the same ETag, and increments the
// result-cache hit counter.
func TestRepeatedRunServedFromCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})

	type envelope struct {
		Result *hotpotato.Result `json:"result"`
		Cached bool              `json:"cached"`
		Error  string            `json:"error"`
	}
	post := func() (*http.Response, envelope) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var env envelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		return resp, env
	}

	respCold, cold := post()
	if cold.Cached {
		t.Fatal("first run claims to be cached")
	}
	hitsBefore, _, _ := svc.Results().Stats()

	respWarm, warm := post()
	if !warm.Cached {
		t.Fatal("second identical run was not served from the cache")
	}
	if hits, _, _ := svc.Results().Stats(); hits != hitsBefore+1 {
		t.Errorf("hit counter went %d -> %d, want +1", hitsBefore, hits)
	}

	etagCold, etagWarm := respCold.Header.Get("ETag"), respWarm.Header.Get("ETag")
	if etagCold == "" || etagCold != etagWarm {
		t.Errorf("ETags diverged: %q vs %q", etagCold, etagWarm)
	}

	// Bit-identical modulo host time: zero the only wall-clock field and
	// compare everything else exactly.
	cold.Result.SchedulerHostTime = 0
	warm.Result.SchedulerHostTime = 0
	if !reflect.DeepEqual(cold.Result, warm.Result) {
		t.Errorf("cached replay diverged from cold run:\ncold %+v\nwarm %+v", cold.Result, warm.Result)
	}
}

// TestRunETagConditionalRequest: If-None-Match with the spec's ETag answers
// 304 with no body and no simulation.
func TestRunETagConditionalRequest(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	resp, _ := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /v1/run response")
	}

	runsBefore, _ := svc.Cache().Stats()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(quickSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-None-Match", etag)
	got, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d, want 304", got.StatusCode)
	}
	if got.Header.Get("ETag") != etag {
		t.Errorf("304 ETag %q, want %q", got.Header.Get("ETag"), etag)
	}
	if runsAfter, _ := svc.Cache().Stats(); runsAfter != runsBefore {
		t.Error("304 path touched the platform cache — it must answer before executing")
	}

	// A non-matching tag executes normally.
	req2, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(quickSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("If-None-Match", `"sha256:other"`)
	got2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer got2.Body.Close()
	if got2.StatusCode != http.StatusOK {
		t.Fatalf("mismatched If-None-Match status %d, want 200", got2.StatusCode)
	}
}

func TestIfNoneMatchParsing(t *testing.T) {
	etag := `"sha256:abc"`
	cases := map[string]bool{
		`"sha256:abc"`:                  true,
		`W/"sha256:abc"`:                true,
		`*`:                             true,
		`"sha256:zzz", "sha256:abc"`:    true,
		`"sha256:zzz" , W/"sha256:abc"`: true,
		`"sha256:zzz"`:                  false,
		`sha256:abc`:                    false, // unquoted is not a valid tag
	}
	for header, want := range cases {
		if got := ifNoneMatchHas(header, etag); got != want {
			t.Errorf("ifNoneMatchHas(%q) = %v, want %v", header, got, want)
		}
	}
}

// TestResultCacheDisabled: negative ResultCacheEntries turns caching off;
// repeat runs simulate again, but ETag/304 still works (the hash is computed
// per request, not read from the cache).
func TestResultCacheDisabled(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, ResultCacheEntries: -1})
	if svc.Results() != nil {
		t.Fatal("negative ResultCacheEntries did not disable the cache")
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var env struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Cached {
			t.Errorf("run %d claims cached with caching disabled", i)
		}
		if resp.Header.Get("ETag") == "" {
			t.Errorf("run %d: ETag missing with caching disabled", i)
		}
	}
}

// TestResultCacheAbandonedFallbackAccounting: a follower whose leader
// abandons the slot re-runs uncached; before the abandoned counter existed
// that run was neither hit nor miss, silently inflating the hit ratio. The
// fallback must count as a miss plus one abandoned-fallback.
func TestResultCacheAbandonedFallbackAccounting(t *testing.T) {
	c := NewResultCache(4)
	const h = "sha256:deadbeef"

	if _, leader := c.Lookup(h); !leader {
		t.Fatal("first lookup should lead")
	}
	entry, leader := c.Lookup(h)
	if leader {
		t.Fatal("second lookup should follow")
	}

	woken := make(chan bool, 1)
	go func() {
		_, _, ok := entry.Wait(context.Background())
		woken <- ok
	}()
	c.Abandon(h)
	if ok := <-woken; ok {
		t.Fatal("follower woken by Abandon reported a cached outcome")
	}
	// The follower now re-runs uncached — the serving layer records that.
	c.RecordAbandonedFallback()

	hits, misses, _ := c.Stats()
	if hits != 0 {
		t.Errorf("hits = %d, want 0", hits)
	}
	if misses != 2 { // leader's miss + the abandoned fallback
		t.Errorf("misses = %d, want 2 (leader + abandoned fallback)", misses)
	}
	if got := c.AbandonedFallbacks(); got != 1 {
		t.Errorf("AbandonedFallbacks = %d, want 1", got)
	}
}
