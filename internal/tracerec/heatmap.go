package tracerec

import (
	"fmt"
	"strings"
)

// heatRamp maps normalized temperature to glyphs, cold to hot.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a per-core temperature vector as an ASCII grid (row-major,
// width×height cores) with a scale legend. Temperatures map linearly from lo
// (coldest glyph) to hi (hottest); values outside clamp.
func Heatmap(temps []float64, width, height int, lo, hi float64) (string, error) {
	if width < 1 || height < 1 {
		return "", fmt.Errorf("tracerec: invalid grid %dx%d", width, height)
	}
	if len(temps) != width*height {
		return "", fmt.Errorf("tracerec: %d temperatures for %dx%d grid", len(temps), width, height)
	}
	if hi <= lo {
		return "", fmt.Errorf("tracerec: invalid range [%g, %g]", lo, hi)
	}
	var sb strings.Builder
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			t := temps[y*width+x]
			frac := (t - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			idx := int(frac * float64(len(heatRamp)-1))
			sb.WriteByte(heatRamp[idx])
			sb.WriteByte(heatRamp[idx]) // double width: squarer cells
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scale: '%c' ≤ %.1f °C … '%c' ≥ %.1f °C\n",
		heatRamp[0], lo, heatRamp[len(heatRamp)-1], hi)
	return sb.String(), nil
}

// HottestSampleHeatmap renders the recorded sample with the highest
// single-core temperature — the moment the chip ran hottest.
func (r *Recorder) HottestSampleHeatmap(width, height int, lo, hi float64) (string, error) {
	if r.Len() == 0 {
		return "", fmt.Errorf("tracerec: no samples recorded")
	}
	maxSeries := r.MaxTempSeries()
	best := 0
	for i, v := range maxSeries {
		if v > maxSeries[best] {
			best = i
		}
	}
	grid, err := Heatmap(r.temps[best], width, height, lo, hi)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("t = %.1f ms (hottest sample, max %.2f °C)\n%s",
		r.times[best]*1e3, maxSeries[best], grid), nil
}
