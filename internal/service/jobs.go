package service

import (
	"fmt"
	"sync"

	hotpotato "repro"
)

// JobStatus is the lifecycle state of an async submission.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Job is the public view of one async submission, as returned by
// GET /v1/jobs/{id}. Result is set once Status is done (and also for failed
// runs that produced a partial result, e.g. timeouts).
type Job struct {
	ID     string            `json:"id"`
	Status JobStatus         `json:"status"`
	Result *hotpotato.Result `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// jobState is the store's mutable record behind a Job view.
type jobState struct {
	mu   sync.Mutex
	job  Job
	spec hotpotato.RunSpec
}

func (j *jobState) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.job
}

func (j *jobState) setStatus(s JobStatus) {
	j.mu.Lock()
	j.job.Status = s
	j.mu.Unlock()
}

func (j *jobState) finish(status JobStatus, res *hotpotato.Result, err error) {
	j.mu.Lock()
	j.job.Status = status
	j.job.Result = res
	if err != nil {
		j.job.Error = err.Error()
	}
	j.mu.Unlock()
}

// jobStore tracks every submission by ID.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*jobState
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*jobState)}
}

func (s *jobStore) create(spec hotpotato.RunSpec) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &jobState{
		job:  Job{ID: fmt.Sprintf("job-%d", s.seq), Status: JobQueued},
		spec: spec,
	}
	s.jobs[j.job.ID] = j
	return j
}

func (s *jobStore) get(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}
