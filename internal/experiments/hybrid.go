package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HybridRow compares the three policies of the future-work experiment on one
// benchmark.
type HybridRow struct {
	Benchmark string
	// Makespans, seconds.
	HotPotato float64
	Hybrid    float64
	PCMig     float64
	// DTM throttling time, seconds.
	HotPotatoDTM float64
	HybridDTM    float64
}

// Hybrid runs the paper's §VII future work — synchronous rotation unified
// with DVFS — against pure HotPotato and PCMig on hot full-load workloads.
// The hybrid's promise: the thermal excursions pure rotation rides out via
// hardware DTM are instead absorbed by a gentle frequency trim.
func Hybrid(opts Options, benchmarks []string) ([]HybridRow, error) {
	opts = opts.withDefaults()
	total := opts.GridEdge * opts.GridEdge
	var rows []HybridRow
	for _, name := range benchmarks {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		specs, err := workload.HomogeneousFullLoad(b, total, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		row := HybridRow{Benchmark: name}
		policies := []struct {
			makespan *float64
			dtm      *float64
			mk       func(*sim.Platform) sim.Scheduler
		}{
			{&row.HotPotato, &row.HotPotatoDTM, func(p *sim.Platform) sim.Scheduler {
				return sched.NewHotPotato(p, opts.TDTM)
			}},
			{&row.Hybrid, &row.HybridDTM, func(p *sim.Platform) sim.Scheduler {
				return sched.NewHotPotatoDVFS(p, opts.TDTM)
			}},
			{&row.PCMig, new(float64), func(*sim.Platform) sim.Scheduler {
				return sched.NewPCMig(opts.TDTM)
			}},
		}
		for _, p := range policies {
			res, err := runWorkload(opts, p.mk, specs, sim.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("experiments: hybrid %s: %w", name, err)
			}
			*p.makespan = res.Makespan
			*p.dtm = res.DTMTime
		}
		rows = append(rows, row)
	}
	return rows, nil
}
