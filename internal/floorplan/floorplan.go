// Package floorplan models the physical layout of an S-NUCA many-core: a
// W×H grid of micro-architecturally homogeneous cores, each holding a bank of
// the physically distributed logically shared LLC. It computes each core's
// Average Manhattan Distance (AMD) to all other cores and partitions the chip
// into concentric AMD rings, the structure HotPotato rotates threads within
// (paper §III-A and Fig. 3).
package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// Floorplan describes the geometry of a grid many-core.
type Floorplan struct {
	Width, Height int     // grid dimensions, cores
	CoreEdge      float64 // edge length of one (square) core, meters

	amd   []float64 // per-core average Manhattan distance, hops
	rings []Ring    // concentric AMD rings, ascending AMD
}

// Ring is a set of cores that share (nearly) the same AMD. Cores within a
// ring are performance- and thermal-wise homogeneous (paper §V), so HotPotato
// rotates threads within a ring.
type Ring struct {
	AMD   float64 // the shared AMD value, hops
	Cores []int   // core IDs ordered for rotation (ring-walk order)
}

// New builds a width×height floorplan. coreEdge is the physical edge of one
// core in meters (paper Table I: 0.81 mm² → 0.9 mm edge).
func New(width, height int, coreEdge float64) (*Floorplan, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("floorplan: invalid grid %dx%d", width, height)
	}
	if coreEdge <= 0 {
		return nil, fmt.Errorf("floorplan: invalid core edge %g", coreEdge)
	}
	f := &Floorplan{Width: width, Height: height, CoreEdge: coreEdge}
	f.computeAMD()
	f.computeRings()
	return f, nil
}

// MustNew is New but panics on error; for tests and literal configurations.
func MustNew(width, height int, coreEdge float64) *Floorplan {
	f, err := New(width, height, coreEdge)
	if err != nil {
		panic(err)
	}
	return f
}

// NumCores returns the number of cores on the chip.
func (f *Floorplan) NumCores() int { return f.Width * f.Height }

// Coord returns the (x, y) grid position of core id.
func (f *Floorplan) Coord(id int) (x, y int) {
	f.checkID(id)
	return id % f.Width, id / f.Width
}

// ID returns the core ID at grid position (x, y).
func (f *Floorplan) ID(x, y int) int {
	if x < 0 || x >= f.Width || y < 0 || y >= f.Height {
		panic(fmt.Sprintf("floorplan: coordinate (%d,%d) outside %dx%d grid", x, y, f.Width, f.Height))
	}
	return y*f.Width + x
}

func (f *Floorplan) checkID(id int) {
	if id < 0 || id >= f.NumCores() {
		panic(fmt.Sprintf("floorplan: core %d outside 0..%d", id, f.NumCores()-1))
	}
}

// ManhattanDistance returns the hop count between cores a and b under
// XY routing.
func (f *Floorplan) ManhattanDistance(a, b int) int {
	ax, ay := f.Coord(a)
	bx, by := f.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Neighbors returns the IDs of the grid neighbours of core id (2–4 cores).
func (f *Floorplan) Neighbors(id int) []int {
	x, y := f.Coord(id)
	out := make([]int, 0, 4)
	if x > 0 {
		out = append(out, f.ID(x-1, y))
	}
	if x < f.Width-1 {
		out = append(out, f.ID(x+1, y))
	}
	if y > 0 {
		out = append(out, f.ID(x, y-1))
	}
	if y < f.Height-1 {
		out = append(out, f.ID(x, y+1))
	}
	return out
}

// AMD returns the Average Manhattan Distance of core id to all cores
// (including the zero distance to itself, matching the S-NUCA average LLC
// bank distance: a core's own bank is one of the n banks).
func (f *Floorplan) AMD(id int) float64 {
	f.checkID(id)
	return f.amd[id]
}

// AMDs returns a copy of the per-core AMD vector.
func (f *Floorplan) AMDs() []float64 {
	out := make([]float64, len(f.amd))
	copy(out, f.amd)
	return out
}

// Rings returns the concentric AMD rings in ascending AMD order. The slice
// and its contents must not be modified.
func (f *Floorplan) Rings() []Ring { return f.rings }

// RingOf returns the index (into Rings) of the ring containing core id.
func (f *Floorplan) RingOf(id int) int {
	f.checkID(id)
	for r, ring := range f.rings {
		for _, c := range ring.Cores {
			if c == id {
				return r
			}
		}
	}
	panic(fmt.Sprintf("floorplan: core %d not in any ring", id))
}

func (f *Floorplan) computeAMD() {
	n := f.NumCores()
	f.amd = make([]float64, n)
	for i := 0; i < n; i++ {
		total := 0
		for j := 0; j < n; j++ {
			total += f.ManhattanDistance(i, j)
		}
		f.amd[i] = float64(total) / float64(n)
	}
}

// amdQuantum groups AMD values that differ by less than this into one ring;
// floating-point AMD averages of symmetric positions are exactly equal, so
// the quantum only absorbs rounding.
const amdQuantum = 1e-9

func (f *Floorplan) computeRings() {
	n := f.NumCores()
	// Group cores by (quantised) AMD.
	byAMD := map[int64][]int{}
	for i := 0; i < n; i++ {
		key := int64(math.Round(f.amd[i] / amdQuantum))
		byAMD[key] = append(byAMD[key], i)
	}
	keys := make([]int64, 0, len(byAMD))
	for k := range byAMD {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	f.rings = make([]Ring, 0, len(keys))
	for _, k := range keys {
		cores := byAMD[k]
		f.orderForRotation(cores)
		f.rings = append(f.rings, Ring{AMD: f.amd[cores[0]], Cores: cores})
	}
}

// orderForRotation sorts the cores of one ring into a walk order such that a
// synchronous rotation steps each thread to the next core of its own ring.
// Cores of an AMD ring lie on a rectangle-like contour around the chip
// centre; ordering by angle around the centre yields the natural cycle.
func (f *Floorplan) orderForRotation(cores []int) {
	cx := float64(f.Width-1) / 2
	cy := float64(f.Height-1) / 2
	sort.Slice(cores, func(a, b int) bool {
		ax, ay := f.Coord(cores[a])
		bx, by := f.Coord(cores[b])
		angA := math.Atan2(float64(ay)-cy, float64(ax)-cx)
		angB := math.Atan2(float64(by)-cy, float64(bx)-cx)
		if angA != angB {
			return angA < angB
		}
		return cores[a] < cores[b]
	})
}

// CenterDistance returns the Euclidean distance (in grid units) from core id
// to the chip centre; used for reporting and plotting.
func (f *Floorplan) CenterDistance(id int) float64 {
	x, y := f.Coord(id)
	cx := float64(f.Width-1) / 2
	cy := float64(f.Height-1) / 2
	dx := float64(x) - cx
	dy := float64(y) - cy
	return math.Hypot(dx, dy)
}

// CoreArea returns the area of one core in m².
func (f *Floorplan) CoreArea() float64 { return f.CoreEdge * f.CoreEdge }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
