package sched

import (
	"fmt"

	"repro/internal/sim"
)

// Static pins threads to fixed cores at a fixed uniform frequency and never
// migrates. With DTM disabled it reproduces the unmanaged execution of the
// paper's Fig. 2(a); with DTM enabled it shows what hardware protection alone
// does to an unmanaged mapping.
type Static struct {
	pins map[sim.ThreadID]int
	freq float64 // 0 means peak frequency
}

// NewStatic builds a pinned scheduler. Threads not present in pins stay
// queued forever, so pins must cover the workload.
func NewStatic(pins map[sim.ThreadID]int, freq float64) *Static {
	copied := make(map[sim.ThreadID]int, len(pins))
	for k, v := range pins {
		copied[k] = v
	}
	return &Static{pins: copied, freq: freq}
}

// Name implements sim.Scheduler.
func (s *Static) Name() string { return "static" }

// Decide implements sim.Scheduler.
func (s *Static) Decide(st *sim.State) sim.Decision {
	assignment := make(map[sim.ThreadID]int)
	for _, th := range st.Threads {
		if core, ok := s.pins[th.ID]; ok {
			assignment[th.ID] = core
		}
	}
	var freqs []float64
	if s.freq > 0 {
		freqs = uniformFreq(st.Platform.NumCores(), s.freq)
	}
	return sim.Decision{Assignment: assignment, Freq: freqs}
}

func uniformFreq(n int, f float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f
	}
	return out
}

// RotationStatic rotates a fixed set of threads synchronously around a fixed
// core cycle at a fixed interval τ, at peak frequency — the policy of the
// paper's motivational Fig. 2(c) (two blackscholes threads rotating over the
// four centre cores at τ = 0.5 ms).
type RotationStatic struct {
	slots map[sim.ThreadID]int // thread → slot index in cores
	cores []int                // rotation cycle in walk order
	tau   float64
}

// NewRotationStatic places each thread at its slot in the core cycle; slot i
// at time t executes on cores[(i + floor(t/τ)) mod len(cores)].
func NewRotationStatic(slots map[sim.ThreadID]int, cores []int, tau float64) (*RotationStatic, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("sched: rotation interval must be positive, got %g", tau)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("sched: rotation needs at least one core")
	}
	seen := map[int]bool{}
	for _, c := range cores {
		if seen[c] {
			return nil, fmt.Errorf("sched: core %d appears twice in rotation cycle", c)
		}
		seen[c] = true
	}
	copied := make(map[sim.ThreadID]int, len(slots))
	for id, slot := range slots {
		if slot < 0 || slot >= len(cores) {
			return nil, fmt.Errorf("sched: slot %d outside cycle of %d cores", slot, len(cores))
		}
		copied[id] = slot
	}
	return &RotationStatic{slots: copied, cores: append([]int(nil), cores...), tau: tau}, nil
}

// Name implements sim.Scheduler.
func (r *RotationStatic) Name() string { return "rotation-static" }

// Decide implements sim.Scheduler.
func (r *RotationStatic) Decide(st *sim.State) sim.Decision {
	step := int(st.Time/r.tau+0.5) % len(r.cores)
	assignment := make(map[sim.ThreadID]int)
	for _, th := range st.Threads {
		if slot, ok := r.slots[th.ID]; ok {
			assignment[th.ID] = r.cores[(slot+step)%len(r.cores)]
		}
	}
	return sim.Decision{Assignment: assignment, NextInvoke: r.tau}
}
