package fabric_test

// promlint_test.go is a promlint-style golden gate over the FULL process
// registry: this package links internal/service (twin_* and service_*
// metrics), internal/fabric (fabric_* plus lazily created fleet_* federation
// series) and, transitively, the sim/sched/rotation instruments — so the
// exposition checked here is the one a real dispatcher or server actually
// serves. Every family must carry # HELP and # TYPE, histograms must end in
// a +Inf bucket consistent with _count, and the registry must refuse
// duplicate names.

import (
	"bufio"
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	_ "repro/internal/service" // register the service and twin metrics
)

// promFamily is one parsed exposition block: # HELP, # TYPE, samples.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	name  string // full sample name, suffixes included
	le    string // the le label for _bucket samples, "" otherwise
	value float64
}

var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]*)"\})? (\S+)$`)

// parseExposition splits Prometheus 0.0.4 text into families, failing the
// test on any line that is neither a well-formed comment nor a sample.
func parseExposition(t *testing.T, text string) []promFamily {
	t.Helper()
	var fams []promFamily
	cur := -1
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			fams = append(fams, promFamily{name: name, help: help})
			cur = len(fams) - 1
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if cur < 0 || fams[cur].name != fields[0] {
				t.Fatalf("# TYPE %s not immediately preceded by its # HELP", fields[0])
			}
			fams[cur].typ = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line %q", line)
		case strings.TrimSpace(line) == "":
			t.Fatalf("blank line in exposition")
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line %q", line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			if cur < 0 || !strings.HasPrefix(m[1], fams[cur].name) {
				t.Fatalf("sample %q outside its family block (current %q)", m[1], famName(fams, cur))
			}
			fams[cur].samples = append(fams[cur].samples, promSample{name: m[1], le: m[2], value: v})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

func famName(fams []promFamily, i int) string {
	if i < 0 {
		return "<none>"
	}
	return fams[i].name
}

func TestPrometheusExpositionLint(t *testing.T) {
	// Materialize at least one federated counter and gauge so the lint covers
	// the lazily created fleet_* series too.
	d := fabric.NewDispatcher(fabric.Config{LeaseTTL: time.Second})
	d.FoldTelemetry("lint-worker",
		map[string]int64{"promlint_probe_total": 3},
		map[string]float64{"promlint_probe_depth": 2})

	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	if len(fams) == 0 {
		t.Fatal("empty exposition")
	}

	validName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	seen := map[string]bool{}
	prev := ""
	for _, f := range fams {
		if f.name <= prev {
			t.Errorf("family %q out of sorted order (after %q)", f.name, prev)
		}
		prev = f.name
		if seen[f.name] {
			t.Errorf("family %q declared twice", f.name)
		}
		seen[f.name] = true
		if !validName.MatchString(f.name) {
			t.Errorf("family name %q is not a valid metric name", f.name)
		}
		if strings.TrimSpace(f.help) == "" {
			t.Errorf("family %q has no # HELP text", f.name)
		}
		switch f.typ {
		case "counter", "gauge":
			if len(f.samples) != 1 || f.samples[0].name != f.name {
				t.Errorf("%s %q: want exactly one sample named %q, got %+v", f.typ, f.name, f.name, f.samples)
				continue
			}
			if f.typ == "counter" && f.samples[0].value < 0 {
				t.Errorf("counter %q is negative: %g", f.name, f.samples[0].value)
			}
		case "histogram":
			lintHistogram(t, f)
		default:
			t.Errorf("family %q has missing or unknown # TYPE %q", f.name, f.typ)
		}
	}

	// The families this PR is about must actually be on the page.
	for _, want := range []string{
		"twin_residual", "twin_drift_checks_total", "twin_bound_violations_total",
		"fleet_promlint_probe_total", "fleet_promlint_probe_depth",
		"fabric_spans_grafted_total", "fabric_fleet_series_dropped_total",
		"obs_spans_dropped_total", "obs_trace_events_dropped_total",
		"sim_runs_total", "service_run_requests_total",
	} {
		if !seen[want] {
			t.Errorf("expected family %q missing from the exposition", want)
		}
	}
}

// lintHistogram checks one histogram family: cumulative non-decreasing
// buckets ending at le="+Inf", whose count equals the _count sample, plus a
// _sum sample.
func lintHistogram(t *testing.T, f promFamily) {
	t.Helper()
	var buckets []promSample
	var sum, count *promSample
	for i := range f.samples {
		s := f.samples[i]
		switch s.name {
		case f.name + "_bucket":
			buckets = append(buckets, s)
		case f.name + "_sum":
			sum = &f.samples[i]
		case f.name + "_count":
			count = &f.samples[i]
		default:
			t.Errorf("histogram %q has stray sample %q", f.name, s.name)
		}
	}
	if len(buckets) == 0 || sum == nil || count == nil {
		t.Errorf("histogram %q incomplete: %d buckets, sum %v, count %v", f.name, len(buckets), sum != nil, count != nil)
		return
	}
	if last := buckets[len(buckets)-1]; last.le != "+Inf" {
		t.Errorf("histogram %q last bucket le=%q, want +Inf", f.name, last.le)
	} else if last.value != count.value {
		t.Errorf("histogram %q +Inf bucket %g != _count %g", f.name, last.value, count.value)
	}
	prevBound := math.Inf(-1)
	prevCum := -1.0
	for _, b := range buckets {
		bound := math.Inf(1)
		if b.le != "+Inf" {
			v, err := strconv.ParseFloat(b.le, 64)
			if err != nil {
				t.Errorf("histogram %q bucket le=%q unparseable", f.name, b.le)
				continue
			}
			bound = v
		}
		if bound <= prevBound {
			t.Errorf("histogram %q bucket bounds not ascending at le=%q", f.name, b.le)
		}
		prevBound = bound
		if b.value < prevCum {
			t.Errorf("histogram %q cumulative counts decrease at le=%q", f.name, b.le)
		}
		prevCum = b.value
	}
}

// TestRegistryRefusesDuplicateNames: the register-at-init discipline depends
// on the duplicate panic actually firing — against the full, post-fleet
// registry, re-claiming any live name must panic.
func TestRegistryRefusesDuplicateNames(t *testing.T) {
	for _, name := range []string{"fabric_sweeps_total", "twin_residual", "fleet_promlint_probe_total"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("re-registering %q did not panic", name)
				}
			}()
			obs.NewCounter(name, "duplicate")
		}()
	}
}
