package hotpotato_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	hotpotato "repro"
)

func decodeSweep(t *testing.T, doc string) hotpotato.SweepSpec {
	t.Helper()
	var s hotpotato.SweepSpec
	if err := json.Unmarshal([]byte(doc), &s); err != nil {
		t.Fatalf("decoding sweep %s: %v", doc, err)
	}
	return s
}

// quickSweepDoc is a 2 schedulers × 2 workloads sweep of cheap 4×4 runs.
const quickSweepDoc = `{
	"base": {"platform": {"width": 4, "height": 4}},
	"axes": {
		"schedulers": [{"name": "hotpotato"}, {"name": "reactive"}],
		"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]},
			{"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 3, "work_scale": 0.3}]}
		]
	}
}`

func TestSweepCellCount(t *testing.T) {
	cases := []struct {
		doc  string
		want int
	}{
		{`{}`, 1},
		{`{"base":{"platform":{"width":4,"height":4}}}`, 1},
		{quickSweepDoc, 4},
		{`{"axes":{"solvers":["dense","sparse"],"seeds":[1,2,3]}}`, 6},
		{`{"axes":{"platforms":[{"width":4,"height":4},{"width":6,"height":6}],"seeds":[1,2]}}`, 4},
	}
	for _, c := range cases {
		if got := decodeSweep(t, c.doc).CellCount(); got != c.want {
			t.Errorf("CellCount(%s) = %d, want %d", c.doc, got, c.want)
		}
	}
}

func TestSweepCellCountSaturates(t *testing.T) {
	// 100^5 cells would overflow naive multiplication; the count must
	// saturate (and Expand must refuse) without materializing anything.
	axes := hotpotato.SweepAxes{}
	for i := 0; i < 100; i++ {
		axes.Seeds = append(axes.Seeds, int64(i))
		axes.Solvers = append(axes.Solvers, "dense")
		axes.Schedulers = append(axes.Schedulers, hotpotato.SchedulerSpec{Name: "hotpotato"})
		axes.Workloads = append(axes.Workloads, hotpotato.WorkloadSpec{Kind: hotpotato.WorkloadRandom, Count: 1, Rate: 1})
		axes.Platforms = append(axes.Platforms, hotpotato.DefaultPlatformConfig(4, 4))
	}
	s := hotpotato.SweepSpec{Axes: axes}
	if got := s.CellCount(); got != hotpotato.MaxSweepCells+1 {
		t.Errorf("CellCount = %d, want saturation at %d", got, hotpotato.MaxSweepCells+1)
	}
	if _, err := s.Expand(); err == nil {
		t.Error("Expand accepted an oversized sweep")
	}
	if err := hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{}, func(hotpotato.SweepCellResult) {}); err == nil {
		t.Error("ExecuteSweep accepted an oversized sweep")
	}
}

// TestSweepExpandOrderAndComposition pins the expansion order (platforms
// outermost … seeds innermost, innermost fastest) and the override
// composition: solvers write into the platform axis entry, seeds into the
// workload axis entry.
func TestSweepExpandOrderAndComposition(t *testing.T) {
	s := decodeSweep(t, `{
		"base": {"scheduler": {"name": "hotpotato"}, "workload": {"kind": "random", "count": 2, "rate": 50}},
		"axes": {
			"platforms": [{"width": 4, "height": 4}, {"width": 6, "height": 6}],
			"solvers": ["dense", "sparse"],
			"seeds": [10, 20]
		}
	}`)
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cell %d carries Index %d", i, cell.Index)
		}
		wantWidth := 4
		if i >= 4 { // platforms axis is outermost
			wantWidth = 6
		}
		wantSolver := "dense"
		if (i/2)%2 == 1 { // solvers axis flips every 2 cells
			wantSolver = "sparse"
		}
		wantSeed := int64(10)
		if i%2 == 1 { // seeds axis is innermost, varies fastest
			wantSeed = 20
		}
		if cell.Spec.Platform.Width != wantWidth {
			t.Errorf("cell %d: width %d, want %d", i, cell.Spec.Platform.Width, wantWidth)
		}
		if cell.Spec.Platform.Thermal.Solver != wantSolver {
			t.Errorf("cell %d: solver %q, want %q (solver must compose over the platform axis)", i, cell.Spec.Platform.Thermal.Solver, wantSolver)
		}
		if cell.Spec.Workload.Seed != wantSeed {
			t.Errorf("cell %d: seed %d, want %d (seed must compose over the workload)", i, cell.Spec.Workload.Seed, wantSeed)
		}
		if cell.Spec.Scheduler.Name != "hotpotato" {
			t.Errorf("cell %d: scheduler %q leaked, want base's hotpotato", i, cell.Spec.Scheduler.Name)
		}
		// Axis platform entries decode over the paper defaults like a
		// RunSpec platform section.
		if cell.Spec.Platform.CoreEdge == 0 {
			t.Errorf("cell %d: platform axis entry missed the defaults overlay", i)
		}
	}

	// Expansion is deterministic: expanding twice yields identical cells.
	again, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("Expand is not deterministic")
	}
}

func TestSweepVersionPropagatesToCells(t *testing.T) {
	s := decodeSweep(t, `{"version":"v1","axes":{"seeds":[1,2]},"base":{"workload":{"kind":"random","count":1,"rate":10}}}`)
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if cell.Spec.Version != hotpotato.SpecVersion {
			t.Errorf("cell %d: version %q, want %q", cell.Index, cell.Spec.Version, hotpotato.SpecVersion)
		}
	}
	bad := decodeSweep(t, `{"version":"v9"}`)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("unknown sweep version not rejected with a field error: %v", err)
	}
	if err := hotpotato.ExecuteSweep(context.Background(), bad, hotpotato.SweepOptions{}, func(hotpotato.SweepCellResult) {}); err == nil {
		t.Error("ExecuteSweep ran a sweep with an unknown version")
	}
	badSolver := decodeSweep(t, `{"axes":{"solvers":["cholesky"]}}`)
	if err := badSolver.Validate(); err == nil {
		t.Error("unknown solvers axis entry not rejected")
	}
}

// TestExecuteSweepEndToEnd runs the 2×2 quick sweep and checks the emitted
// results: one per cell, hashed, each a real simulation outcome.
func TestExecuteSweepEndToEnd(t *testing.T) {
	s := decodeSweep(t, quickSweepDoc)
	var mu []hotpotato.SweepCellResult
	err := hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{Workers: 2}, func(r hotpotato.SweepCellResult) {
		mu = append(mu, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != 4 {
		t.Fatalf("emitted %d results, want 4", len(mu))
	}
	seenIdx := map[int]bool{}
	hashes := map[string]bool{}
	for _, r := range mu {
		if seenIdx[r.Index] {
			t.Errorf("cell %d emitted twice", r.Index)
		}
		seenIdx[r.Index] = true
		if r.Err != nil {
			t.Errorf("cell %d failed: %v", r.Index, r.Err)
			continue
		}
		if r.Result == nil || len(r.Result.Tasks) == 0 {
			t.Errorf("cell %d: no tasks in result", r.Index)
		}
		if !strings.HasPrefix(r.Hash, "sha256:") {
			t.Errorf("cell %d: hash %q", r.Index, r.Hash)
		}
		hashes[r.Hash] = true
		if r.Spec.Version != hotpotato.SpecVersion {
			t.Errorf("cell %d: emitted spec not canonical (version %q)", r.Index, r.Spec.Version)
		}
	}
	if len(hashes) != 4 {
		t.Errorf("4 distinct cells produced %d distinct hashes", len(hashes))
	}
}

// TestExecuteSweepWorkerInvariance: the emitted (Index, Hash, Result) set is
// identical at any worker count — the determinism contract of the batch API.
func TestExecuteSweepWorkerInvariance(t *testing.T) {
	s := decodeSweep(t, quickSweepDoc)
	collect := func(workers int) map[int]string {
		t.Helper()
		out := map[int]string{}
		err := hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{Workers: workers}, func(r hotpotato.SweepCellResult) {
			if r.Err != nil {
				t.Fatalf("workers=%d cell %d: %v", workers, r.Index, r.Err)
			}
			r.Result.SchedulerHostTime = 0
			b, err := json.Marshal(r.Result)
			if err != nil {
				t.Fatal(err)
			}
			out[r.Index] = r.Hash + "|" + string(b)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := collect(1)
	for _, workers := range []int{2, 4, 8} {
		if got := collect(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d produced different results than workers=1", workers)
		}
	}
}

// TestExecuteSweepInvalidCellsAreEmittedNotFatal: a sweep with one bad cell
// still runs the others; the bad cell arrives as a per-cell error.
func TestExecuteSweepInvalidCellsAreEmitted(t *testing.T) {
	s := decodeSweep(t, `{
		"base": {"platform": {"width": 4, "height": 4}, "workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}},
		"axes": {"schedulers": [{"name": "hotpotato"}, {"name": "no-such-policy"}]}
	}`)
	var good, bad int
	err := hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{}, func(r hotpotato.SweepCellResult) {
		if r.Err != nil {
			bad++
			if r.Hash != "" {
				t.Errorf("invalid cell carries hash %q", r.Hash)
			}
			if !strings.Contains(r.Err.Error(), fmt.Sprintf("cell %d", r.Index)) {
				t.Errorf("cell error does not name its index: %v", r.Err)
			}
		} else {
			good++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if good != 1 || bad != 1 {
		t.Errorf("good=%d bad=%d, want 1 and 1", good, bad)
	}
}

// TestExecuteSweepCancellation: cancelling mid-sweep fails the remaining
// cells with ErrCanceled and returns the context error.
func TestExecuteSweepCancellation(t *testing.T) {
	s := decodeSweep(t, `{
		"base": {"platform": {"width": 4, "height": 4}, "scheduler": {"name": "hotpotato"}},
		"axes": {"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}]},
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}], "seed": 1},
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}], "seed": 2},
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}], "seed": 3}
		]}
	}`)
	ctx, cancel := context.WithCancel(context.Background())
	var results []hotpotato.SweepCellResult
	done := make(chan error, 1)
	started := make(chan struct{}, 8)
	go func() {
		done <- hotpotato.ExecuteSweep(ctx, s, hotpotato.SweepOptions{
			Workers: 2,
			Run: func(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error) {
				started <- struct{}{}
				res, err := hotpotato.ExecuteSpec(ctx, cell.Spec)
				return res, false, err
			},
		}, func(r hotpotato.SweepCellResult) {
			results = append(results, r)
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("ExecuteSweep returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
	if len(results) != 4 {
		t.Fatalf("emitted %d results, want all 4 (canceled cells still emit)", len(results))
	}
	var canceled int
	for _, r := range results {
		if errors.Is(r.Err, hotpotato.ErrCanceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no cell reported ErrCanceled after mid-sweep cancellation")
	}
}

func TestNewSweepResultRecord(t *testing.T) {
	res := &hotpotato.Result{Scheduler: "hotpotato"}
	prune := &hotpotato.PruneDecision{Verdict: "below", PeakC: 60, BoundC: 2}
	cases := []struct {
		name       string
		in         hotpotato.SweepCellResult
		status     string
		wantResult bool
		wantError  bool
	}{
		{"ok", hotpotato.SweepCellResult{Index: 3, Hash: "sha256:aa", Result: res}, "ok", true, false},
		{"cached ok", hotpotato.SweepCellResult{Result: res, Cached: true}, "ok", true, false},
		{"timeout keeps partial result", hotpotato.SweepCellResult{Result: res, Err: fmt.Errorf("wrap: %w", hotpotato.ErrTimeout)}, "ok", true, true},
		{"canceled drops result", hotpotato.SweepCellResult{Result: res, Err: fmt.Errorf("wrap: %w", hotpotato.ErrCanceled)}, "canceled", false, true},
		// Runners that surface the raw context errors (a worker's own
		// ctx.Err(), an HTTP client timeout) must classify as canceled, not
		// failed — misclassifying them made summaries blame the sweep for
		// its own shutdown.
		{"raw context.Canceled", hotpotato.SweepCellResult{Err: context.Canceled}, "canceled", false, true},
		{"raw deadline exceeded", hotpotato.SweepCellResult{Err: fmt.Errorf("run: %w", context.DeadlineExceeded)}, "canceled", false, true},
		{"failed", hotpotato.SweepCellResult{Err: errors.New("bad spec")}, "failed", false, true},
		{"pruned", hotpotato.SweepCellResult{Index: 5, Hash: "sha256:bb", Result: res, Pruned: prune}, "pruned", false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := hotpotato.NewSweepResultRecord(c.in)
			if rec.Type != "result" {
				t.Errorf("Type = %q", rec.Type)
			}
			if rec.Status != c.status {
				t.Errorf("Status = %q, want %q", rec.Status, c.status)
			}
			if (rec.Result != nil) != c.wantResult {
				t.Errorf("Result present = %v, want %v", rec.Result != nil, c.wantResult)
			}
			if (rec.Error != "") != c.wantError {
				t.Errorf("Error %q, want set=%v", rec.Error, c.wantError)
			}
			if rec.Index != c.in.Index || rec.Hash != c.in.Hash || rec.Cached != c.in.Cached {
				t.Errorf("record did not carry index/hash/cached through: %+v", rec)
			}
			if (rec.Status == "pruned") != rec.Pruned {
				t.Errorf("Pruned flag %v inconsistent with status %q", rec.Pruned, rec.Status)
			}
			if c.in.Pruned != nil && (rec.Prune == nil || *rec.Prune != *c.in.Pruned) {
				t.Errorf("prune decision not carried through: %+v", rec.Prune)
			}
		})
	}
}

// TestSweepSummaryObserve pins the counter classification every summary
// producer (service stream, fabric dispatcher, CLI) shares: the five terminal
// states partition into the four counters, cache hits tally orthogonally, and
// the counters sum back to the cell count.
func TestSweepSummaryObserve(t *testing.T) {
	res := &hotpotato.Result{Scheduler: "hotpotato"}
	cells := []hotpotato.SweepCellResult{
		{Index: 0, Result: res},                                                              // ok
		{Index: 1, Result: res, Cached: true},                                                // ok + cache hit
		{Index: 2, Result: res, Err: fmt.Errorf("w: %w", hotpotato.ErrTimeout)},              // ok (partial)
		{Index: 3, Err: fmt.Errorf("w: %w", hotpotato.ErrCanceled)},                          // canceled
		{Index: 4, Err: context.Canceled},                                                    // canceled (raw)
		{Index: 5, Err: context.DeadlineExceeded},                                            // canceled (raw)
		{Index: 6, Err: errors.New("boom")},                                                  // failed
		{Index: 7, Pruned: &hotpotato.PruneDecision{Verdict: "above", PeakC: 90, BoundC: 1}}, // pruned
	}
	summary := hotpotato.SweepSummary{Type: "summary", Total: len(cells)}
	for _, c := range cells {
		summary.Observe(hotpotato.NewSweepResultRecord(c))
	}
	if summary.Completed != 3 || summary.Canceled != 3 || summary.Failed != 1 || summary.Pruned != 1 {
		t.Errorf("counters completed=%d canceled=%d failed=%d pruned=%d, want 3/3/1/1",
			summary.Completed, summary.Canceled, summary.Failed, summary.Pruned)
	}
	if summary.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", summary.CacheHits)
	}
	if sum := summary.Completed + summary.Canceled + summary.Failed + summary.Pruned; sum != summary.Total {
		t.Errorf("counters sum to %d, want Total %d — terminal states must partition", sum, summary.Total)
	}
	// Unknown statuses (a future record type from a newer worker) count as
	// failed so the partition invariant survives version skew.
	var skew hotpotato.SweepSummary
	skew.Observe(hotpotato.SweepResultRecord{Status: "mystery"})
	if skew.Failed != 1 {
		t.Errorf("unknown status counted as %+v, want Failed=1", skew)
	}
}

// TestSweepPruneThresholdDecodeAndValidate: prune_above_temp survives the
// custom SweepSpec decoder and Validate rejects non-finite thresholds.
func TestSweepPruneThresholdDecodeAndValidate(t *testing.T) {
	s := decodeSweep(t, `{"base":{"platform":{"width":4,"height":4}},"prune_above_temp":80.5,"axes":{"seeds":[1,2]}}`)
	if s.PruneAboveTemp == nil || *s.PruneAboveTemp != 80.5 {
		t.Fatalf("prune_above_temp lost in decode: %+v", s.PruneAboveTemp)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid threshold rejected: %v", err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"prune_above_temp":80.5`) {
		t.Errorf("threshold lost in re-encode: %s", b)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := decodeSweep(t, `{"base":{"platform":{"width":4,"height":4}}}`)
		s.PruneAboveTemp = &bad
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted prune_above_temp = %v", bad)
		}
	}
	// Absent in the document ⇒ absent in the spec (pruning stays off).
	if s := decodeSweep(t, quickSweepDoc); s.PruneAboveTemp != nil {
		t.Errorf("prune_above_temp defaulted on: %v", *s.PruneAboveTemp)
	}
}

// TestExecuteSweepPrunePartition runs the quick 2×2 sweep twice — once plain,
// once with a prune hook skipping half the cells — and checks the pruned
// stream is consistent with the unpruned partition: pruned cells emit their
// decision and no result, surviving cells are bit-identical to the reference,
// and the summary counters still partition the cell count.
func TestExecuteSweepPrunePartition(t *testing.T) {
	s := decodeSweep(t, quickSweepDoc)

	reference := map[int]string{}
	err := hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{Workers: 2}, func(r hotpotato.SweepCellResult) {
		if r.Err != nil {
			t.Fatalf("reference cell %d: %v", r.Index, r.Err)
		}
		r.Result.SchedulerHostTime = 0
		b, _ := json.Marshal(r.Result)
		reference[r.Index] = r.Hash + "|" + string(b)
	})
	if err != nil {
		t.Fatal(err)
	}

	prune := func(ctx context.Context, cell hotpotato.SweepCell) (hotpotato.PruneDecision, bool) {
		if cell.Index%2 == 0 {
			return hotpotato.PruneDecision{Verdict: "below", PeakC: 50, BoundC: 1}, true
		}
		return hotpotato.PruneDecision{}, false
	}
	var summary hotpotato.SweepSummary
	got := map[int]string{}
	err = hotpotato.ExecuteSweep(context.Background(), s, hotpotato.SweepOptions{Workers: 2, Prune: prune}, func(r hotpotato.SweepCellResult) {
		rec := hotpotato.NewSweepResultRecord(r)
		summary.Observe(rec)
		switch {
		case r.Pruned != nil:
			if r.Result != nil || r.Err != nil {
				t.Errorf("pruned cell %d still simulated (result=%v err=%v)", r.Index, r.Result != nil, r.Err)
			}
			if r.Hash == "" {
				t.Errorf("pruned cell %d lost its spec hash", r.Index)
			}
			if rec.Status != "pruned" || !rec.Pruned || rec.Prune == nil {
				t.Errorf("pruned cell %d record: %+v", r.Index, rec)
			}
		case r.Err != nil:
			t.Errorf("cell %d: %v", r.Index, r.Err)
		default:
			r.Result.SchedulerHostTime = 0
			b, _ := json.Marshal(r.Result)
			got[r.Index] = r.Hash + "|" + string(b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Pruned != 2 || summary.Completed != 2 {
		t.Errorf("summary pruned=%d completed=%d, want 2 and 2", summary.Pruned, summary.Completed)
	}
	if sum := summary.Completed + summary.Canceled + summary.Failed + summary.Pruned; sum != s.CellCount() {
		t.Errorf("counters sum to %d, want CellCount %d", sum, s.CellCount())
	}
	for idx, want := range reference {
		if idx%2 == 0 {
			continue // pruned in the second run
		}
		if got[idx] != want {
			t.Errorf("surviving cell %d diverges from the unpruned reference", idx)
		}
	}
}

// TestSweepRecordsRoundTrip: every stream record type survives a JSON round
// trip with its discriminator intact — the NDJSON wire contract.
func TestSweepRecordsRoundTrip(t *testing.T) {
	records := []any{
		hotpotato.SweepStarted{Type: "sweep", Total: 4, RequestID: "r1"},
		hotpotato.SweepResultRecord{Type: "result", Index: 2, Hash: "sha256:ab", Status: "ok"},
		hotpotato.SweepProgress{Type: "progress", Done: 2, Total: 4, ElapsedMS: 10.5},
		hotpotato.SweepSummary{Type: "summary", Total: 4, Completed: 3, Failed: 1, ElapsedMS: 99},
	}
	var types []string
	for _, rec := range records {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(b, &disc); err != nil {
			t.Fatal(err)
		}
		types = append(types, disc.Type)
	}
	sort.Strings(types)
	if want := []string{"progress", "result", "summary", "sweep"}; !reflect.DeepEqual(types, want) {
		t.Errorf("record discriminators %v, want %v", types, want)
	}
}
