package workload

import (
	"fmt"
	"math"
)

// ThreadState reports what a thread is doing right now.
type ThreadState int

const (
	// ThreadIdle: the thread is blocked at a phase barrier (or the phase
	// does not involve it); the core burns idle power.
	ThreadIdle ThreadState = iota
	// ThreadRunning: the thread executes instructions.
	ThreadRunning
	// ThreadDone: the task has completed.
	ThreadDone
)

// Task is a live multi-threaded benchmark instance: the runtime state built
// from a Benchmark description. Thread 0 is the master.
type Task struct {
	ID      int
	Bench   Benchmark
	Threads int
	Arrival float64 // seconds of simulated time

	// WorkScale multiplies the benchmark's reference instruction count, so a
	// mix can contain shorter and longer instances of the same benchmark.
	WorkScale float64

	phase     int       // index into Bench.Phases, == len(Phases) when done
	remaining []float64 // per-thread instructions left in the current phase

	StartTime  float64 // first time any thread executed; -1 before
	FinishTime float64 // -1 until done
}

// NewTask instantiates a benchmark with the given thread count.
func NewTask(id int, b Benchmark, threads int, arrival, workScale float64) (*Task, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if threads < 1 {
		return nil, fmt.Errorf("workload: task %d: need at least one thread, got %d", id, threads)
	}
	if workScale <= 0 {
		return nil, fmt.Errorf("workload: task %d: work scale must be positive, got %g", id, workScale)
	}
	if arrival < 0 {
		return nil, fmt.Errorf("workload: task %d: negative arrival %g", id, arrival)
	}
	t := &Task{
		ID: id, Bench: b, Threads: threads, Arrival: arrival,
		WorkScale: workScale, StartTime: -1, FinishTime: -1,
		remaining: make([]float64, threads),
	}
	t.enterPhase(0)
	return t, nil
}

// enterPhase loads the instruction budgets of phase idx.
func (t *Task) enterPhase(idx int) {
	t.phase = idx
	if idx >= len(t.Bench.Phases) {
		return
	}
	ph := t.Bench.Phases[idx]
	budget := t.Bench.Work * t.WorkScale * ph.Frac
	for i := range t.remaining {
		t.remaining[i] = 0
	}
	for _, i := range t.activeThreads(ph) {
		t.remaining[i] = budget / float64(len(t.activeThreads(ph)))
	}
}

// activeThreads returns the thread indices that execute in phase ph.
func (t *Task) activeThreads(ph Phase) []int {
	if ph.Kind == Serial || t.Threads == 1 {
		return []int{0}
	}
	// Workers are threads 1..T-1; the master idles (the paper's Fig. 2
	// master/slave alternation).
	out := make([]int, t.Threads-1)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Done reports whether the task has completed all phases.
func (t *Task) Done() bool { return t.phase >= len(t.Bench.Phases) }

// Phase returns the current phase index (== number of phases when done).
func (t *Task) Phase() int { return t.phase }

// State returns what thread `idx` is doing.
func (t *Task) State(idx int) ThreadState {
	if t.Done() {
		return ThreadDone
	}
	if t.remaining[idx] > 0 {
		return ThreadRunning
	}
	return ThreadIdle
}

// Remaining returns the instructions thread idx still owes in this phase.
func (t *Task) Remaining(idx int) float64 {
	if t.Done() {
		return 0
	}
	return t.remaining[idx]
}

// TotalRemaining returns the instructions left across all phases (current
// phase residue plus untouched future phases).
func (t *Task) TotalRemaining() float64 {
	if t.Done() {
		return 0
	}
	total := 0.0
	for _, r := range t.remaining {
		total += r
	}
	for i := t.phase + 1; i < len(t.Bench.Phases); i++ {
		total += t.Bench.Work * t.WorkScale * t.Bench.Phases[i].Frac
	}
	return total
}

// Execute retires `instr` instructions on thread idx and advances the phase
// barrier when every active thread of the phase has finished. It returns the
// instructions actually consumed (≤ instr; less when the thread's phase
// share completes first).
func (t *Task) Execute(idx int, instr float64) float64 {
	if t.Done() || instr <= 0 {
		return 0
	}
	if t.remaining[idx] <= 0 {
		return 0
	}
	used := math.Min(instr, t.remaining[idx])
	t.remaining[idx] -= used
	if t.remaining[idx] < 1e-6 { // absorb float dust at the barrier
		t.remaining[idx] = 0
	}
	t.maybeAdvancePhase()
	return used
}

func (t *Task) maybeAdvancePhase() {
	for !t.Done() {
		allDone := true
		for _, r := range t.remaining {
			if r > 0 {
				allDone = false
				break
			}
		}
		if !allDone {
			return
		}
		t.enterPhase(t.phase + 1)
	}
}

// ResponseTime returns finish − arrival, or NaN before completion.
func (t *Task) ResponseTime() float64 {
	if t.FinishTime < 0 {
		return math.NaN()
	}
	return t.FinishTime - t.Arrival
}
