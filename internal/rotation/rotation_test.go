package rotation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/matrix"
	"repro/internal/thermal"
)

// fastConfig shrinks all capacitances 100× so that brute-force transient
// simulation reaches the periodic steady state within a few dozen periods.
// Steady states (and thus the analytic math) are unchanged — only the time
// constants compress.
func fastConfig() thermal.Config {
	cfg := thermal.DefaultConfig()
	cfg.SiCapacitance /= 100
	cfg.SpCapacitance /= 100
	cfg.SinkCapacitancePerCore /= 100
	return cfg
}

func newCalc(t testing.TB, w, h int, cfg thermal.Config) *Calculator {
	t.Helper()
	m, err := thermal.New(floorplan.MustNew(w, h, 0.0009), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCalculator(m)
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Tau: 0.5e-3, Powers: [][]float64{{1, 2, 3, 4}}}
	if err := good.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Tau: 0, Powers: [][]float64{{1, 2, 3, 4}}},
		{Tau: 1e-3, Powers: nil},
		{Tau: 1e-3, Powers: [][]float64{{1, 2}}},
		{Tau: 1e-3, Powers: [][]float64{{1, 2, 3, -1}}},
		{Tau: 1e-3, Powers: [][]float64{{1, 2, 3, math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestRotateBuildsPermutations(t *testing.T) {
	base := []float64{0.3, 0.3, 0.3, 0.3, 0.3, 9, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3}
	cores := []int{5, 6, 10, 9} // ring-walk order
	plan := Rotate(0.5e-3, base, cores)
	if plan.Delta() != 4 {
		t.Fatalf("delta = %d, want 4", plan.Delta())
	}
	// Epoch 0 is the base assignment.
	if !matrix.VecApproxEqual(plan.Powers[0], base, 0) {
		t.Errorf("epoch 0 = %v, want base", plan.Powers[0])
	}
	// The 9 W thread visits each ring core exactly once across the period.
	visited := map[int]bool{}
	for e := 0; e < 4; e++ {
		found := -1
		for _, c := range cores {
			if plan.Powers[e][c] == 9 {
				if found >= 0 {
					t.Fatalf("epoch %d: hot thread on two cores", e)
				}
				found = c
			}
		}
		if found < 0 {
			t.Fatalf("epoch %d: hot thread vanished", e)
		}
		visited[found] = true
	}
	if len(visited) != 4 {
		t.Errorf("hot thread visited %d distinct cores, want 4", len(visited))
	}
	// Total power per epoch is conserved under rotation.
	want := 0.0
	for _, v := range base {
		want += v
	}
	for e := 0; e < 4; e++ {
		got := 0.0
		for _, v := range plan.Powers[e] {
			got += v
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("epoch %d total power %v, want %v", e, got, want)
		}
	}
}

func TestSingleEpochPlanEqualsSteadyState(t *testing.T) {
	// With δ=1 the periodic steady state is the ordinary steady state.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	p := matrix.Constant(16, 0.3)
	p[5] = 8
	res, err := c.Evaluate(Plan{Tau: 0.5e-3, Powers: [][]float64{p}})
	if err != nil {
		t.Fatal(err)
	}
	ss := c.Model().SteadyState(p)
	if !matrix.VecApproxEqual(res.EpochEnd[0], ss, 1e-6) {
		t.Fatal("δ=1 periodic state differs from steady state")
	}
	if math.Abs(res.Peak-c.Model().MaxCoreTemp(ss)) > 1e-6 {
		t.Fatalf("peak %v vs steady max %v", res.Peak, c.Model().MaxCoreTemp(ss))
	}
	if res.PeakCore != 5 {
		t.Errorf("peak core = %d, want 5", res.PeakCore)
	}
}

func TestUniformRotationMatchesConstantPower(t *testing.T) {
	// Rotating identical power vectors is the same as holding them constant.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	p := matrix.Constant(16, 2.5)
	plan := Plan{Tau: 1e-3, Powers: [][]float64{p, p, p, p}}
	res, err := c.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	ss := c.Model().SteadyState(p)
	for e := 0; e < 4; e++ {
		if !matrix.VecApproxEqual(res.EpochEnd[e], ss, 1e-6) {
			t.Fatalf("epoch %d differs from steady state", e)
		}
	}
}

func TestStartIsPeriodicFixedPoint(t *testing.T) {
	// Advancing exactly one period from Result.Start must return to Start.
	// The stepper is exact for per-epoch constant power, so this checks the
	// fixed-point equation behind Eq. 10 directly.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5], base[10] = 9, 7
	plan := Rotate(0.5e-3, base, []int{5, 6, 10, 9})
	res, err := c.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	stepper, err := c.Model().NewStepper(plan.Tau)
	if err != nil {
		t.Fatal(err)
	}
	tv := append([]float64(nil), res.Start...)
	for e := 0; e < plan.Delta(); e++ {
		tv = stepper.Step(tv, plan.Powers[e])
	}
	if !matrix.VecApproxEqual(tv, res.Start, 1e-6) {
		t.Fatal("one period from Start does not return to Start")
	}
}

func TestRotationPeakBetweenAverageAndStatic(t *testing.T) {
	// Rotation averages hot and cold cores: its peak lies above the steady
	// peak of the time-averaged power, but below the steady peak of pinning
	// the hot thread (τ→∞ limit).
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	cores := []int{5, 6, 10, 9}
	plan := Rotate(0.5e-3, base, cores)
	res, err := c.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	staticPeak := c.Model().MaxCoreTemp(c.Model().SteadyState(base))
	avg := append([]float64(nil), base...)
	mean := (9 + 3*0.3) / 4
	for _, cr := range cores {
		avg[cr] = mean
	}
	avgPeak := c.Model().MaxCoreTemp(c.Model().SteadyState(avg))
	if res.Peak <= avgPeak {
		t.Errorf("rotation peak %.2f not above averaged-power peak %.2f", res.Peak, avgPeak)
	}
	if res.Peak >= staticPeak {
		t.Errorf("rotation peak %.2f not below static peak %.2f", res.Peak, staticPeak)
	}
}

func TestFasterRotationLowersPeak(t *testing.T) {
	// Shrinking τ moves the peak toward the spatial average (paper Alg. 2
	// uses this as its pressure-release valve).
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	cores := []int{5, 6, 10, 9}
	var prev float64 = math.Inf(1)
	for _, tau := range []float64{4e-3, 1e-3, 0.25e-3} {
		peak, err := c.PeakTemperature(Rotate(tau, base, cores))
		if err != nil {
			t.Fatal(err)
		}
		if peak >= prev {
			t.Errorf("τ=%v: peak %.3f not lower than previous %.3f", tau, peak, prev)
		}
		prev = peak
	}
}

func TestAnalyticMatchesBruteForce(t *testing.T) {
	// The headline correctness check: Algorithm 1's closed form equals
	// explicit transient simulation once that simulation has converged.
	c := newCalc(t, 3, 3, fastConfig())
	base := matrix.Constant(9, 0.3)
	base[4] = 8 // centre core hot
	plan := Rotate(1e-3, base, []int{4, 1, 3, 5, 7})
	analytic, err := c.PeakTemperature(plan)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := c.BruteForcePeak(plan, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-brute) > 0.05 {
		t.Fatalf("analytic %.4f vs brute force %.4f", analytic, brute)
	}
}

// Property: analytic and brute-force peaks agree for random plans.
func TestPropAnalyticMatchesBruteForceRandom(t *testing.T) {
	m, err := thermal.New(floorplan.MustNew(2, 2, 0.0009), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCalculator(m)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		delta := 1 + r.Intn(5)
		powers := make([][]float64, delta)
		for e := range powers {
			p := make([]float64, 4)
			for i := range p {
				p[i] = r.Float64() * 8
			}
			powers[e] = p
		}
		plan := Plan{Tau: (0.5 + r.Float64()) * 1e-3, Powers: powers}
		analytic, err := c.PeakTemperature(plan)
		if err != nil {
			return false
		}
		// Simulate ≥ 200 ms so the slowest (sink) mode converges regardless
		// of how short the random plan's period is.
		periods := int(0.2/(plan.Tau*float64(delta))) + 1
		brute, err := c.BruteForcePeak(plan, periods, 3)
		if err != nil {
			return false
		}
		return math.Abs(analytic-brute) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: peak minus ambient scales linearly with power (the model is LTI).
func TestPropPeakLinearInPower(t *testing.T) {
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	amb := c.Model().Ambient()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]float64, 16)
		for i := range base {
			base[i] = r.Float64() * 5
		}
		plan := Rotate(1e-3, base, []int{5, 6, 10, 9})
		p1, err := c.PeakTemperature(plan)
		if err != nil {
			return false
		}
		scaled := Plan{Tau: plan.Tau, Powers: make([][]float64, plan.Delta())}
		for e := range plan.Powers {
			scaled.Powers[e] = matrix.VecScale(2, plan.Powers[e])
		}
		p2, err := c.PeakTemperature(scaled)
		if err != nil {
			return false
		}
		// Peak core may shift, but with the same spatial pattern scaled it
		// does not: rise doubles.
		return math.Abs((p2-amb)-2*(p1-amb)) < 1e-6*(1+p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateRejectsBadPlans(t *testing.T) {
	c := newCalc(t, 2, 2, thermal.DefaultConfig())
	if _, err := c.Evaluate(Plan{Tau: -1, Powers: [][]float64{{1, 1, 1, 1}}}); err == nil {
		t.Error("negative τ accepted")
	}
	if _, err := c.PeakTemperature(Plan{Tau: 1e-3, Powers: [][]float64{{1}}}); err == nil {
		t.Error("wrong-width plan accepted")
	}
	if _, err := c.BruteForcePeak(Plan{Tau: 1e-3, Powers: [][]float64{{1, 1, 1, 1}}}, 0, 4); err == nil {
		t.Error("zero periods accepted")
	}
}

func TestEvaluateDetailedFields(t *testing.T) {
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	plan := Rotate(0.5e-3, base, []int{5, 6, 10, 9})
	res, err := c.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochEnd) != plan.Delta() {
		t.Fatalf("EpochEnd length %d, want %d", len(res.EpochEnd), plan.Delta())
	}
	if res.PeakEpoch < 0 || res.PeakEpoch >= plan.Delta() {
		t.Errorf("PeakEpoch = %d out of range", res.PeakEpoch)
	}
	if res.PeakCore < 0 || res.PeakCore >= 16 {
		t.Errorf("PeakCore = %d out of range", res.PeakCore)
	}
	// The peak must be attained in the recorded epoch/core.
	if got := res.EpochEnd[res.PeakEpoch][res.PeakCore]; got != res.Peak {
		t.Errorf("EpochEnd[%d][%d] = %v, want Peak %v", res.PeakEpoch, res.PeakCore, got, res.Peak)
	}
}

func BenchmarkPeakTemperature64CoreDelta8(b *testing.B) {
	// The paper's run-time overhead scenario: Algorithm 1 on a 64-core chip.
	m, err := thermal.New(floorplan.MustNew(8, 8, 0.0009), thermal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := NewCalculator(m)
	base := matrix.Constant(64, 0.3)
	for i := 0; i < 16; i++ {
		base[i*4] = 6
	}
	ring := make([]int, 8)
	for i := range ring {
		ring[i] = i * 8
	}
	plan := Rotate(0.5e-3, base, ring)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PeakTemperature(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStackedModelVerticalRotation(t *testing.T) {
	// The §VII 3D future-work story at the analytics level: on a 2-layer
	// stack, a hot thread pinned on the buried layer runs hotter than the
	// same thread rotating between the buried core and the core stacked
	// directly above it — vertical rotation exploits the top layer's better
	// heat path. Algorithm 1 evaluates the 3D model unchanged.
	fp := floorplan.MustNew(4, 4, 0.0009)
	m, err := thermal.NewStacked(fp, thermal.DefaultStackedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCalculator(m)

	base := matrix.Constant(32, 0.3)
	buried := thermal.StackedCoreID(0, 5, 16)
	top := thermal.StackedCoreID(1, 5, 16)
	base[buried] = 9

	pinned, err := c.PeakTemperature(Plan{Tau: 0.5e-3, Powers: [][]float64{base}})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := c.PeakTemperature(Rotate(0.5e-3, base, []int{buried, top}))
	if err != nil {
		t.Fatal(err)
	}
	if rotated >= pinned {
		t.Errorf("vertical rotation peak %.2f not below pinned %.2f", rotated, pinned)
	}
}

func TestStackedAnalyticMatchesBruteForce(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	cfg := thermal.DefaultStackedConfig(2)
	cfg.SiCapacitance /= 100
	cfg.SpCapacitance /= 100
	cfg.SinkCapacitancePerCore /= 100
	m, err := thermal.NewStacked(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCalculator(m)
	base := matrix.Constant(8, 0.3)
	base[0] = 8                             // buried layer, position 0
	plan := Rotate(1e-3, base, []int{0, 4}) // rotate with the core above
	analytic, err := c.PeakTemperature(plan)
	if err != nil {
		t.Fatal(err)
	}
	brute, err := c.BruteForcePeak(plan, 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic-brute) > 0.05 {
		t.Fatalf("stacked: analytic %.4f vs brute %.4f", analytic, brute)
	}
}
