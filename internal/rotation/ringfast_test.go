package rotation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/matrix"
	"repro/internal/thermal"
)

// buildEquivalentPlan expands a (base, ring, slotWatts) ring rotation into
// the explicit Plan the general Evaluate path consumes.
func buildEquivalentPlan(tau float64, base []float64, ringCores []int, slotWatts []float64) Plan {
	size := len(ringCores)
	powers := make([][]float64, size)
	for e := 0; e < size; e++ {
		p := append([]float64(nil), base...)
		for i, w := range slotWatts {
			p[ringCores[(i+e)%size]] = w
		}
		powers[e] = p
	}
	return Plan{Tau: tau, Powers: powers}
}

func TestRingFastMatchesGeneralEvaluate(t *testing.T) {
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()

	base := matrix.Constant(16, 0.5)
	ring := []int{5, 6, 10, 9}
	slotWatts := []float64{9, 0.3, 7, 0.3}

	fast, err := ev.PeakRingRotation(0.5e-3, base, ring, slotWatts)
	if err != nil {
		t.Fatal(err)
	}
	general, err := c.PeakTemperature(buildEquivalentPlan(0.5e-3, base, ring, slotWatts))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-general) > 1e-6 {
		t.Fatalf("fast path %.6f vs general %.6f", fast, general)
	}
}

func TestRingFastValidation(t *testing.T) {
	c := newCalc(t, 2, 2, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()
	base := matrix.Constant(4, 0.3)
	if _, err := ev.PeakRingRotation(0, base, []int{0, 1}, []float64{1, 1}); err == nil {
		t.Error("zero τ accepted")
	}
	if _, err := ev.PeakRingRotation(1e-3, base[:2], []int{0, 1}, []float64{1, 1}); err == nil {
		t.Error("short base accepted")
	}
	if _, err := ev.PeakRingRotation(1e-3, base, nil, nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := ev.PeakRingRotation(1e-3, base, []int{0, 1}, []float64{1}); err == nil {
		t.Error("slot/ring length mismatch accepted")
	}
	if _, err := ev.PeakRingRotation(1e-3, base, []int{0, 9}, []float64{1, 1}); err == nil {
		t.Error("out-of-range ring core accepted")
	}
}

// Property: the fast path agrees with the general path on random rings,
// powers, and epoch lengths.
func TestPropRingFastEquivalence(t *testing.T) {
	m, err := thermal.New(floorplan.MustNew(3, 3, 0.0009), thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCalculator(m)
	ev := c.NewRingEvaluator()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]float64, 9)
		for i := range base {
			base[i] = r.Float64() * 4
		}
		// Random ring: a permutation prefix of cores.
		perm := r.Perm(9)
		size := 2 + r.Intn(6)
		ring := perm[:size]
		slotWatts := make([]float64, size)
		for i := range slotWatts {
			slotWatts[i] = r.Float64() * 9
		}
		tau := (0.2 + r.Float64()*2) * 1e-3
		fast, err := ev.PeakRingRotation(tau, base, ring, slotWatts)
		if err != nil {
			return false
		}
		general, err := c.PeakTemperature(buildEquivalentPlan(tau, base, ring, slotWatts))
		if err != nil {
			return false
		}
		return math.Abs(fast-general) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRingFastUniformBackgroundIsSteadyState(t *testing.T) {
	// A ring whose slots all equal the base power degenerates to a constant
	// field: the peak is the steady-state maximum.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()
	base := matrix.Constant(16, 2.5)
	ring := []int{5, 6, 10, 9}
	fast, err := ev.PeakRingRotation(1e-3, base, ring, []float64{2.5, 2.5, 2.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	ss := c.Model().SteadyState(base)
	want := c.Model().MaxCoreTemp(ss)
	if math.Abs(fast-want) > 1e-6 {
		t.Fatalf("uniform rotation peak %.6f, steady max %.6f", fast, want)
	}
}

func BenchmarkRingFast64Core(b *testing.B) {
	m, err := thermal.New(floorplan.MustNew(8, 8, 0.0009), thermal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := NewCalculator(m)
	ev := c.NewRingEvaluator()
	base := matrix.Constant(64, 2)
	rings := m.Floorplan().Rings()
	ring := rings[len(rings)/2].Cores
	slotWatts := make([]float64, len(ring))
	for i := range slotWatts {
		slotWatts[i] = float64(i%3) * 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.PeakRingRotation(0.5e-3, base, ring, slotWatts); err != nil {
			b.Fatal(err)
		}
	}
}
