package matrix

import (
	"fmt"
	"math"
)

// banded.go implements symmetric banded storage and the banded Cholesky
// factorization behind the sparse thermal solver's steady-state solves.
// Under an RCM ordering (rcm.go) the head block of the thermal conductance
// matrix has half-bandwidth O(grid width), so a factorization costs
// O(N·k²) and each solve O(N·k) — versus O(N³)/O(N²) dense. The numbers are
// tabulated in docs/PERFORMANCE.md; the structure argument is in
// docs/THEORY.md §"Why the Laplacian is banded".

// SymBanded is a symmetric n×n matrix with half-bandwidth k (entries with
// |i−j| > k are structurally zero), storing the lower band row-major: row i
// holds columns max(0, i−k)..i. Like Dense, a SymBanded is mutable during
// assembly and must not be mutated once shared between goroutines.
type SymBanded struct {
	n, k int
	// data[i*(k+1) + (j-i+k)] = a_ij for i-k ≤ j ≤ i.
	data []float64
}

// NewSymBanded returns a zeroed symmetric n×n matrix with half-bandwidth k.
func NewSymBanded(n, k int) *SymBanded {
	if n <= 0 || k < 0 {
		panic(fmt.Sprintf("matrix: invalid banded dimensions n=%d k=%d", n, k))
	}
	if k >= n {
		k = n - 1
	}
	return &SymBanded{n: n, k: k, data: make([]float64, n*(k+1))}
}

// Dim returns the matrix dimension n.
func (m *SymBanded) Dim() int { return m.n }

// Bandwidth returns the half-bandwidth k.
func (m *SymBanded) Bandwidth() int { return m.k }

// At returns a_ij, exploiting symmetry; entries outside the band are zero.
func (m *SymBanded) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %d-dim banded matrix", i, j, m.n))
	}
	if j > i {
		i, j = j, i
	}
	if i-j > m.k {
		return 0
	}
	return m.data[i*(m.k+1)+(j-i+m.k)]
}

// Add accumulates v into a_ij (and by symmetry a_ji). It panics if (i, j)
// lies outside the band — assembly must size the bandwidth first (see
// BandwidthUnder).
func (m *SymBanded) Add(i, j int, v float64) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %d-dim banded matrix", i, j, m.n))
	}
	if j > i {
		i, j = j, i
	}
	if i-j > m.k {
		panic(fmt.Sprintf("matrix: entry (%d,%d) outside half-bandwidth %d", i, j, m.k))
	}
	m.data[i*(m.k+1)+(j-i+m.k)] += v
}

// MulVecTo computes m·x into dst using the symmetric band in O(n·k); the
// destination-passing contract of Dense.MulVecTo applies: no allocation, dst
// must not alias x.
func (m *SymBanded) MulVecTo(dst, x []float64) {
	if len(x) != m.n || len(dst) != m.n {
		panic(fmt.Sprintf("matrix: banded MulVecTo got dst %d, x %d, want %d", len(dst), len(x), m.n))
	}
	for i := range dst {
		dst[i] = 0
	}
	w := m.k + 1
	for i := 0; i < m.n; i++ {
		row := m.data[i*w : (i+1)*w]
		lo := i - m.k
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			v := row[j-i+m.k]
			dst[i] += v * x[j]
			dst[j] += v * x[i]
		}
		dst[i] += row[m.k] * x[i]
	}
}

// ToDense materializes the full symmetric matrix (tests and small systems).
func (m *SymBanded) ToDense() *Dense {
	d := New(m.n, m.n)
	for i := 0; i < m.n; i++ {
		lo := i - m.k
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			v := m.data[i*(m.k+1)+(j-i+m.k)]
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	return d
}

// BandedCholesky holds the factorization A = L·Lᵀ of a symmetric positive
// definite banded matrix, with L lower triangular of the same half-bandwidth
// (Cholesky of a banded matrix incurs no fill outside the band). It is
// immutable after FactorBandedCholesky and safe for concurrent solves as
// long as each caller passes its own destination (the solver itself keeps no
// scratch).
type BandedCholesky struct {
	n, k int
	l    []float64 // same layout as SymBanded: row i holds L_i,max(0,i-k)..L_ii
}

// FactorBandedCholesky computes the banded Cholesky factorization of a in
// O(n·k²). It returns an error if a is not positive definite — for the
// thermal head block that certifies the model is dissipative.
func FactorBandedCholesky(a *SymBanded) (*BandedCholesky, error) {
	n, k := a.n, a.k
	w := k + 1
	c := &BandedCholesky{n: n, k: k, l: make([]float64, n*w)}
	copy(c.l, a.data)
	l := c.l
	for j := 0; j < n; j++ {
		d := l[j*w+k]
		// Subtract the squared band of row j accumulated so far.
		lo := j - k
		if lo < 0 {
			lo = 0
		}
		for p := lo; p < j; p++ {
			v := l[j*w+(p-j+k)]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("matrix: banded Cholesky: not positive definite (pivot %d = %g)", j, d)
		}
		ljj := math.Sqrt(d)
		l[j*w+k] = ljj

		hi := j + k
		if hi >= n {
			hi = n - 1
		}
		for i := j + 1; i <= hi; i++ {
			s := l[i*w+(j-i+k)]
			// Dot of rows i and j over their shared band prefix.
			plo := i - k
			if plo < lo {
				plo = lo
			}
			for p := plo; p < j; p++ {
				s -= l[i*w+(p-i+k)] * l[j*w+(p-j+k)]
			}
			l[i*w+(j-i+k)] = s / ljj
		}
	}
	return c, nil
}

// Dim returns the system dimension n.
func (c *BandedCholesky) Dim() int { return c.n }

// Bandwidth returns the half-bandwidth k of the factor.
func (c *BandedCholesky) Bandwidth() int { return c.k }

// ForwardTo solves L·y = b into dst in O(n·k) with no allocation. dst may
// alias b (the sweep only reads entries it has already written).
func (c *BandedCholesky) ForwardTo(dst, b []float64) {
	c.checkLen(dst, b)
	n, k, w := c.n, c.k, c.k+1
	l := c.l
	for i := 0; i < n; i++ {
		s := b[i]
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		for p := lo; p < i; p++ {
			s -= l[i*w+(p-i+k)] * dst[p]
		}
		dst[i] = s / l[i*w+k]
	}
}

// BackwardTo solves Lᵀ·x = y into dst in O(n·k) with no allocation. dst may
// alias y.
func (c *BandedCholesky) BackwardTo(dst, y []float64) {
	c.checkLen(dst, y)
	n, k, w := c.n, c.k, c.k+1
	l := c.l
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		hi := i + k
		if hi >= n {
			hi = n - 1
		}
		for p := i + 1; p <= hi; p++ {
			s -= l[p*w+(i-p+k)] * dst[p]
		}
		dst[i] = s / l[i*w+k]
	}
}

// SolveVecTo solves A·x = b into dst with no allocation: the
// destination-passing twin of Cholesky.SolveVec for banded systems. dst may
// alias b.
func (c *BandedCholesky) SolveVecTo(dst, b []float64) {
	c.ForwardTo(dst, b)
	c.BackwardTo(dst, dst)
}

// SolveVec solves A·x = b, allocating the result.
func (c *BandedCholesky) SolveVec(b []float64) []float64 {
	dst := make([]float64, c.n)
	c.SolveVecTo(dst, b)
	return dst
}

func (c *BandedCholesky) checkLen(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("matrix: banded solve got dst %d, rhs %d, want %d", len(dst), len(b), c.n))
	}
}
