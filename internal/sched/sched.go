// Package sched implements the thread schedulers of the paper's evaluation:
//
//   - Static: pinned mapping at a fixed frequency (the unmanaged Fig. 2(a)
//     execution);
//   - RotationStatic: fixed synchronous rotation over a core set at a fixed
//     interval (the Fig. 2(c) execution);
//   - TSPGovernor: TSP [14] power budgeting via chip-wide DVFS on a pinned
//     mapping (the Fig. 2(b) execution);
//   - PCMig: the state-of-the-art baseline [10], [21] — cache-aware mapping,
//     TSP-based per-core DVFS, and asynchronous on-demand migrations;
//   - HotPotato: the paper's contribution (Algorithm 2) — AMD-ring
//     synchronous rotation driven by the analytical peak-temperature method
//     of Algorithm 1, without DVFS.
package sched

import (
	"sort"

	"repro/internal/sim"
)

// liveSet indexes scheduler-visible threads by ID.
func liveSet(st *sim.State) map[sim.ThreadID]sim.ThreadInfo {
	m := make(map[sim.ThreadID]sim.ThreadInfo, len(st.Threads))
	for _, th := range st.Threads {
		m[th.ID] = th
	}
	return m
}

// taskGroup is a task's live threads, used for gang admission.
type taskGroup struct {
	taskID  int
	arrival float64
	threads []sim.ThreadInfo
}

// queuedTasks groups the queued (core == -1) threads by task, ordered FIFO by
// arrival time (ties broken by task ID). Gang admission: a task is admitted
// only when all of its threads fit at once, and tasks are never reordered —
// identical policy for every scheduler so comparisons are fair.
func queuedTasks(st *sim.State) []taskGroup {
	byTask := map[int]*taskGroup{}
	for _, th := range st.Threads {
		if th.Core >= 0 {
			continue
		}
		g, ok := byTask[th.ID.Task]
		if !ok {
			g = &taskGroup{taskID: th.ID.Task, arrival: th.Arrival}
			byTask[th.ID.Task] = g
		}
		g.threads = append(g.threads, th)
	}
	groups := make([]taskGroup, 0, len(byTask))
	for _, g := range byTask {
		// Workers first (ascending), master last: workers execute the
		// parallel bulk of a task, so when cores differ in quality the
		// workers should claim the better ones. Both schedulers share this
		// order, keeping the comparison about thermal policy, not placement
		// luck.
		sort.Slice(g.threads, func(a, b int) bool {
			ta, tb := g.threads[a].ID.Thread, g.threads[b].ID.Thread
			if (ta == 0) != (tb == 0) {
				return tb == 0
			}
			return ta < tb
		})
		groups = append(groups, *g)
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].arrival != groups[b].arrival {
			return groups[a].arrival < groups[b].arrival
		}
		return groups[a].taskID < groups[b].taskID
	})
	return groups
}

// freeCores returns the cores not used by the given assignment, ascending.
func freeCores(n int, assignment map[sim.ThreadID]int) []int {
	used := make([]bool, n)
	for _, c := range assignment {
		used[c] = true
	}
	var out []int
	for c := 0; c < n; c++ {
		if !used[c] {
			out = append(out, c)
		}
	}
	return out
}

// coresByAMD returns core IDs sorted by ascending AMD (ties by ID).
func coresByAMD(st *sim.State, cores []int) []int {
	fp := st.Platform.FP
	out := append([]int(nil), cores...)
	sort.Slice(out, func(a, b int) bool {
		if fp.AMD(out[a]) != fp.AMD(out[b]) {
			return fp.AMD(out[a]) < fp.AMD(out[b])
		}
		return out[a] < out[b]
	})
	return out
}

// sortedIDs returns the map's thread IDs in deterministic order.
func sortedIDs(m map[sim.ThreadID]int) []sim.ThreadID {
	out := make([]sim.ThreadID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return less(out[a], out[b]) })
	return out
}
