package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EpochEvent is one structured record per scheduler epoch — the paper's
// evaluation telemetry (§V) emitted natively by the simulator instead of
// being reconstructed from per-slice traces. The simulator records it right
// after applying a scheduler decision, so Mapping/Freqs describe the epoch
// that is about to execute while the temperatures describe the chip at the
// decision instant.
type EpochEvent struct {
	// Epoch is the 0-based scheduler invocation index.
	Epoch int `json:"epoch"`
	// Time is the simulated time of the decision, seconds.
	Time float64 `json:"time"`
	// Mapping is the thread→core assignment chosen for this epoch, keyed by
	// the "task:thread" form of a ThreadID. Unmapped (queued) threads are
	// absent.
	Mapping map[string]int `json:"mapping"`
	// Freqs is the per-core frequency in Hz after the decision (DVFS clamp
	// applied, hardware DTM throttling not — DTM acts per slice).
	Freqs []float64 `json:"freqs_hz"`
	// CoreTemps is the per-core silicon temperature in °C at the decision
	// instant (true temperatures, not the sensor-noise view).
	CoreTemps []float64 `json:"core_temps_c"`
	// CorePower is the per-core power in watts over the slice preceding the
	// decision (zero at epoch 0, before anything has executed).
	CorePower []float64 `json:"core_power_w"`
	// PeakTemp is the hottest core in CoreTemps, °C.
	PeakTemp float64 `json:"peak_temp_c"`
	// AmbientDelta is PeakTemp minus the model ambient, K — the
	// ambient-relative headroom signal Algorithm 1 reasons in.
	AmbientDelta float64 `json:"ambient_delta_k"`
	// Migrations is how many thread migrations this decision performed.
	Migrations int `json:"migrations"`
	// WallNS is the host wall-clock the scheduler's Decide call took,
	// nanoseconds (the paper's §VI overhead metric, per decision).
	WallNS int64 `json:"wall_ns"`
}

// Wall returns the Decide wall-clock as a Duration.
func (e EpochEvent) Wall() time.Duration { return time.Duration(e.WallNS) }

// Tracer receives one event per scheduler epoch. RecordEpoch is called on
// the goroutine driving the simulation, never concurrently with itself; a
// Tracer that is read from other goroutines (RingTracer) must synchronize
// internally. The simulator's nil-tracer fast path means an uninstrumented
// run pays a single pointer test per epoch.
type Tracer interface {
	RecordEpoch(ev EpochEvent)
}

// DefaultTraceDepth is the RingTracer capacity when none is given: at the
// paper's 0.5 ms epochs it retains the last ~2 s of simulated time.
const DefaultTraceDepth = 4096

// RingTracer is a bounded ring buffer of epoch events: recording never
// blocks and never grows beyond the capacity — old epochs are overwritten,
// and Dropped reports how many. It is safe for concurrent use (the HTTP
// service reads a job's trace while the run is still recording).
type RingTracer struct {
	mu      sync.Mutex
	events  []EpochEvent
	next    int
	wrapped bool
	total   int64
}

// NewRingTracer returns a tracer retaining the last `capacity` epochs
// (capacity ≤ 0 selects DefaultTraceDepth).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &RingTracer{events: make([]EpochEvent, 0, capacity)}
}

// RecordEpoch implements Tracer.
func (t *RingTracer) RecordEpoch(ev EpochEvent) {
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, ev)
	} else {
		t.events[t.next] = ev
		t.wrapped = true
		metricTraceEventsDropped.Inc()
	}
	t.next = (t.next + 1) % cap(t.events)
	t.total++
	t.mu.Unlock()
}

// Len returns how many events are currently retained.
func (t *RingTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Total returns how many events were ever recorded.
func (t *RingTracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by the ring.
func (t *RingTracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.events))
}

// Events returns the retained events, oldest first.
func (t *RingTracer) Events() []EpochEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EpochEvent, 0, len(t.events))
	if t.wrapped {
		out = append(out, t.events[t.next:]...)
	}
	return append(out, t.events[:t.next]...)
}

// WriteJSONL writes the retained events as JSON lines, oldest first — the
// `hotpotato-sim -trace out.jsonl` dump format.
func (t *RingTracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
