package matrix

import (
	"errors"
	"math"
)

// tridiag.go: in-place eigendecomposition of a symmetric tridiagonal matrix
// by the implicit QL method with Wilkinson shifts (the classical EISPACK
// tql2 routine). The Krylov expm·v kernel diagonalizes its m×m Lanczos
// tridiagonal with it on every convergence check; m stays small (≤ the
// subspace cap), so the O(m³) cost is invisible next to the matvecs — but
// the routine must not allocate, because it runs inside the zero-allocation
// step contract of thermal.Stepper.StepTo.

// symTridEigen diagonalizes the n×n symmetric tridiagonal matrix with
// diagonal d[0:n] and subdiagonal e[0:n-1] (e[i] couples rows i and i+1).
// On return d holds the eigenvalues (unsorted) and the columns of z hold the
// corresponding orthonormal eigenvectors; e is destroyed (e must have length
// ≥ n, its last entry is used as workspace). z is a row-major n×n block with
// row stride ldz and must be initialized to the identity by the caller (or
// to a basis to be rotated). The routine performs no allocation.
func symTridEigen(d, e []float64, n int, z []float64, ldz int) error {
	if n == 0 {
		return nil
	}
	e[n-1] = 0
	const maxIter = 50
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Look for a negligible subdiagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= eps2*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxIter {
				return errors.New("matrix: symmetric tridiagonal QL failed to converge")
			}
			// Wilkinson shift from the leading 2×2.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			i := m - 1
			for ; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Deflate: recover and restart the sweep.
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector block.
				for k := 0; k < n; k++ {
					f := z[k*ldz+i+1]
					z[k*ldz+i+1] = s*z[k*ldz+i] + c*f
					z[k*ldz+i] = c*z[k*ldz+i] - s*f
				}
			}
			if r == 0 && i >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// eps2 is the relative negligibility threshold of the QL sweep — a few ulps
// above machine epsilon, matching LAPACK's sterf/steqr practice.
const eps2 = 2.3e-16
