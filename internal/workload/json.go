package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// benchmarkJSON is the on-disk schema for custom benchmark models, so users
// can define workloads without recompiling:
//
//	[
//	  {
//	    "name": "mykernel",
//	    "nominal_watts": 7.5,
//	    "base_cpi": 0.9,
//	    "mpki": 4,
//	    "work": 3.0e8,
//	    "phases": [
//	      {"kind": "serial", "frac": 0.1},
//	      {"kind": "parallel", "frac": 0.8},
//	      {"kind": "serial", "frac": 0.1}
//	    ]
//	  }
//	]
type benchmarkJSON struct {
	Name         string      `json:"name"`
	NominalWatts float64     `json:"nominal_watts"`
	BaseCPI      float64     `json:"base_cpi"`
	MPKI         float64     `json:"mpki"`
	LLCMissRatio float64     `json:"llc_miss_ratio,omitempty"`
	Work         float64     `json:"work"`
	Phases       []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Kind string  `json:"kind"`
	Frac float64 `json:"frac"`
}

// FromJSON decodes a benchmark list from r and validates every entry.
func FromJSON(r io.Reader) ([]Benchmark, error) {
	var raw []benchmarkJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding benchmarks: %w", err)
	}
	out := make([]Benchmark, 0, len(raw))
	for _, rb := range raw {
		b := Benchmark{
			Name:         rb.Name,
			NominalWatts: rb.NominalWatts,
			BaseCPI:      rb.BaseCPI,
			MPKI:         rb.MPKI,
			LLCMissRatio: rb.LLCMissRatio,
			Work:         rb.Work,
		}
		for _, ph := range rb.Phases {
			kind, err := parsePhaseKind(ph.Kind)
			if err != nil {
				return nil, fmt.Errorf("workload: %s: %w", rb.Name, err)
			}
			b.Phases = append(b.Phases, Phase{Kind: kind, Frac: ph.Frac})
		}
		if err := b.Validate(); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no benchmarks in input")
	}
	return out, nil
}

// ToJSON encodes benchmarks in the FromJSON schema (indented).
func ToJSON(w io.Writer, benchmarks []Benchmark) error {
	raw := make([]benchmarkJSON, 0, len(benchmarks))
	for _, b := range benchmarks {
		if err := b.Validate(); err != nil {
			return err
		}
		rb := benchmarkJSON{
			Name:         b.Name,
			NominalWatts: b.NominalWatts,
			BaseCPI:      b.BaseCPI,
			MPKI:         b.MPKI,
			LLCMissRatio: b.LLCMissRatio,
			Work:         b.Work,
		}
		for _, ph := range b.Phases {
			rb.Phases = append(rb.Phases, phaseJSON{Kind: ph.Kind.String(), Frac: ph.Frac})
		}
		raw = append(raw, rb)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(raw)
}

func parsePhaseKind(s string) (PhaseKind, error) {
	switch s {
	case "serial":
		return Serial, nil
	case "parallel":
		return Parallel, nil
	default:
		return 0, fmt.Errorf("unknown phase kind %q (want \"serial\" or \"parallel\")", s)
	}
}
