package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	hotpotato "repro"
)

// Archive is the dispatcher's durable result store. Two trees under one
// root:
//
//	by-hash/<hex[:2]>/<hex>.json       one completed cell per SpecHash
//	sweeps/<YYYY-MM-DD>/<sweep-id>.json one manifest per completed sweep
//
// by-hash is content-addressed: simulations are deterministic, so a record
// stored under its spec's hash is never stale and a later sweep containing
// the same cell replays it without leasing a worker. Only status "ok"
// records are archived — failures are worth retrying, and canceled cells
// carry no result. Writes are atomic (tmp + rename) so a crashed dispatcher
// never leaves a torn record for the hit path to read.
type Archive struct {
	root  string
	clock Clock
}

// Manifest is the per-sweep archive index entry: what ran, when, and how it
// went. It mirrors the stream's terminal summary plus identity fields.
type Manifest struct {
	SweepID   string  `json:"sweep_id"`
	RequestID string  `json:"request_id,omitempty"`
	TraceID   string  `json:"trace_id,omitempty"`
	Total     int     `json:"total"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled"`
	Pruned    int     `json:"pruned"`
	CacheHits int     `json:"cache_hits"`
	Requeues  int     `json:"requeues,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Date is the manifest's sweeps/<date>/ directory, stamped on listing
	// (not stored in the file — the directory is the source of truth).
	Date string `json:"date,omitempty"`
}

// NewArchive opens (creating if needed) an archive rooted at dir. clock
// dates the sweep manifests; nil means the real clock.
func NewArchive(dir string, clock Clock) (*Archive, error) {
	if clock == nil {
		clock = realClock{}
	}
	for _, sub := range []string{"by-hash", "sweeps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fabric: create archive: %w", err)
		}
	}
	return &Archive{root: dir, clock: clock}, nil
}

// hashPath maps a SpecHash ("sha256:<hex>") to its by-hash file, rejecting
// anything that is not a plain hex digest so archive keys can never escape
// the root.
func (a *Archive) hashPath(hash string) (string, error) {
	hex, ok := strings.CutPrefix(hash, "sha256:")
	if !ok || len(hex) != 64 {
		return "", fmt.Errorf("fabric: malformed spec hash %q", hash)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("fabric: malformed spec hash %q", hash)
		}
	}
	return filepath.Join(a.root, "by-hash", hex[:2], hex+".json"), nil
}

// Get returns the archived record for hash, if any. The returned record's
// Index is the archived sweep's — callers re-stamp it for the current sweep.
func (a *Archive) Get(hash string) (hotpotato.SweepResultRecord, bool) {
	var rec hotpotato.SweepResultRecord
	path, err := a.hashPath(hash)
	if err != nil {
		return rec, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, false
	}
	if json.Unmarshal(data, &rec) != nil || rec.Status != "ok" {
		return rec, false
	}
	return rec, true
}

// Put archives one completed cell under its SpecHash. Non-"ok" records are
// rejected — the archive stores only replayable results.
func (a *Archive) Put(hash string, rec hotpotato.SweepResultRecord) error {
	if rec.Status != "ok" {
		return fmt.Errorf("fabric: refusing to archive status %q", rec.Status)
	}
	path, err := a.hashPath(hash)
	if err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeAtomic(path, data)
}

// WriteManifest records a completed sweep under sweeps/<date>/<id>.json.
func (a *Archive) WriteManifest(sweepID string, m Manifest) error {
	if strings.ContainsAny(sweepID, "/\\") || sweepID == "" {
		return fmt.Errorf("fabric: malformed sweep id %q", sweepID)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	day := a.clock.Now().UTC().Format("2006-01-02")
	return writeAtomic(filepath.Join(a.root, "sweeps", day, sweepID+".json"), data)
}

// RecentManifests returns up to limit sweep manifests, newest first (date
// directories descending, then file names descending within a day — sweep
// IDs are sequence-numbered, so the lexicographic order is close enough to
// chronological for a status listing). Unreadable entries are skipped: the
// listing is an observability surface, not an integrity check.
func (a *Archive) RecentManifests(limit int) []Manifest {
	if a == nil || limit <= 0 {
		return nil
	}
	days, err := os.ReadDir(filepath.Join(a.root, "sweeps"))
	if err != nil {
		return nil
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Name() > days[j].Name() })
	var out []Manifest
	for _, day := range days {
		if !day.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(a.root, "sweeps", day.Name()))
		if err != nil {
			continue
		}
		sort.Slice(files, func(i, j int) bool { return files[i].Name() > files[j].Name() })
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(a.root, "sweeps", day.Name(), f.Name()))
			if err != nil {
				continue
			}
			var m Manifest
			if json.Unmarshal(data, &m) != nil || m.SweepID == "" {
				continue
			}
			m.Date = day.Name()
			out = append(out, m)
			if len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// writeAtomic writes data to path via a same-directory temp file and rename,
// so readers only ever see complete files.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
