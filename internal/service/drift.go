package service

import (
	"math"
	"sync"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
)

// drift.go closes the twin-accuracy loop online — the live counterpart of
// twin_diff_test.go's offline guarantee. Every /v1/predict answer is
// remembered by SpecHash; when a full simulation for the same hash completes
// (through /v1/run, a batch cell, or a fabric lease — all of them pass
// through cachedExecute), the signed residual between the simulated peak
// temperature and the twin's transient-peak estimate lands in the
// twin_residual histogram, and a conclusive prediction whose bound did not
// hold increments twin_bound_violations_total. A violation staying at zero
// in production is the evidence that the committed TWIN_model.json's bounds
// still hold on live traffic.

var (
	metricTwinDriftChecks = obs.NewCounter("twin_drift_checks_total",
		"Predict-then-simulate pairs that closed (same SpecHash seen by /v1/predict and a full run).")
	metricTwinBoundViolations = obs.NewCounter("twin_bound_violations_total",
		"Drift checks where |residual| exceeded a conclusive prediction's error bound.")
	// Bounds are °C of signed residual (simulated minus predicted), symmetric
	// around zero so under- and over-prediction are distinguishable.
	metricTwinResidual = obs.NewHistogram("twin_residual",
		"Signed twin transient-peak residual in degrees C: simulated peak minus predicted estimate.",
		[]float64{-5, -2, -1, -0.5, -0.2, -0.05, 0.05, 0.2, 0.5, 1, 2, 5})
)

// driftTrackerEntries bounds both tracker maps. Predictions beyond the cap
// evict the oldest pending entry (FIFO) — a server that predicts thousands
// of specs without running them should not grow without bound.
const driftTrackerEntries = 1024

// pendingPrediction is what a drift check needs from a /v1/predict answer.
type pendingPrediction struct {
	estimateC  float64
	boundC     float64
	conclusive bool
}

// driftTracker matches /v1/predict answers with full simulation results by
// SpecHash. Safe for concurrent use.
type driftTracker struct {
	mu sync.Mutex
	// pending maps SpecHash → the prediction awaiting a full run; order is
	// the FIFO eviction queue.
	pending map[string]pendingPrediction
	order   []string
	// closed holds observations awaiting pickup by TakeDriftReport (the
	// fabric worker attaches them to results posts), keyed by SpecHash.
	closed map[string]fabric.DriftReport
}

func newDriftTracker() *driftTracker {
	return &driftTracker{
		pending: map[string]pendingPrediction{},
		closed:  map[string]fabric.DriftReport{},
	}
}

// Predict arms the tracker: the next full run of hash closes an observation.
// Re-predicting the same hash refreshes the entry (and re-arms a hash whose
// observation already closed).
func (t *driftTracker) Predict(hash string, field hotpotato.TwinField) {
	if t == nil || hash == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.pending[hash]; !exists {
		if len(t.pending) >= driftTrackerEntries {
			// Evict the oldest still-pending hash.
			for len(t.order) > 0 {
				oldest := t.order[0]
				t.order = t.order[1:]
				if _, ok := t.pending[oldest]; ok {
					delete(t.pending, oldest)
					break
				}
			}
		}
		t.order = append(t.order, hash)
	}
	t.pending[hash] = pendingPrediction{
		estimateC:  field.Estimate,
		boundC:     field.Bound,
		conclusive: field.Conclusive,
	}
}

// Observe closes the loop for a finished full simulation: if hash has a
// pending prediction, the residual is recorded into the twin drift metrics
// and stored for TakeDriftReport. Each prediction closes at most once — a
// cache hit replaying the same result must not double count.
func (t *driftTracker) Observe(hash string, res *hotpotato.Result) {
	if t == nil || hash == "" || res == nil || math.IsNaN(res.PeakTemp) {
		return
	}
	t.mu.Lock()
	pred, ok := t.pending[hash]
	if ok {
		delete(t.pending, hash)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	residual := res.PeakTemp - pred.estimateC
	violated := pred.conclusive && math.Abs(residual) > pred.boundC
	metricTwinDriftChecks.Inc()
	metricTwinResidual.Observe(residual)
	if violated {
		metricTwinBoundViolations.Inc()
	}
	t.mu.Lock()
	if len(t.closed) < driftTrackerEntries {
		t.closed[hash] = fabric.DriftReport{
			Index: -1, Hash: hash,
			ResidualC: residual, BoundC: pred.boundC, Violated: violated,
		}
	}
	t.mu.Unlock()
}

// Take pops the closed observation for hash, if any.
func (t *driftTracker) Take(hash string) (fabric.DriftReport, bool) {
	if t == nil {
		return fabric.DriftReport{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dr, ok := t.closed[hash]
	if ok {
		delete(t.closed, hash)
	}
	return dr, ok
}

// TakeDriftReport pops the twin-drift observation recorded when a full run
// closed a pending /v1/predict answer for hash. The fabric worker wires this
// as its DriftQuery so per-sweep drift tallies reach the dispatcher's status
// surface.
func (s *Server) TakeDriftReport(hash string) (fabric.DriftReport, bool) {
	return s.drift.Take(hash)
}
