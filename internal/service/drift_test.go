package service

// drift_test.go is the online twin-drift acceptance test: a /v1/predict
// answer armed for a spec hash must be closed by the next full simulation of
// that hash — whether the run is fresh or a result-cache hit — producing one
// residual observation, zero bound violations for the committed calibration
// artifact, and a takeable per-hash report for the fabric sidecar.

import (
	"fmt"
	"math"
	"net/http"
	"testing"

	hotpotato "repro"
)

func TestTwinDriftPredictThenRun(t *testing.T) {
	model := testTwinModel(t)
	svr, ts := newTestServer(t, Config{Workers: 2, TwinModel: model})

	checks0 := metricTwinDriftChecks.Value()
	violations0 := metricTwinBoundViolations.Value()
	residuals0 := metricTwinResidual.Count()

	resp, body := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	pred := decodePrediction(t, body)

	// A prediction alone observes nothing — drift needs the simulator's
	// answer.
	if got := metricTwinDriftChecks.Value(); got != checks0 {
		t.Fatalf("predict alone moved twin_drift_checks_total by %d", got-checks0)
	}

	runResp, runBody := postJSON(t, ts.URL+"/v1/run", inDomainSpecJSON)
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", runResp.StatusCode, runBody)
	}

	if got := metricTwinDriftChecks.Value(); got != checks0+1 {
		t.Fatalf("twin_drift_checks_total moved by %d, want 1", got-checks0)
	}
	if got := metricTwinResidual.Count(); got != residuals0+1 {
		t.Errorf("twin_residual count moved by %d, want 1", got-residuals0)
	}
	// The committed TWIN_model.json's transient-peak bound contains the
	// simulator's answer for the in-domain spec (TestPredictAnswersAndBoundHolds
	// proves the general claim), so no violation may be recorded.
	if got := metricTwinBoundViolations.Value(); got != violations0 {
		t.Errorf("twin_bound_violations_total moved by %d, want 0", got-violations0)
	}

	// The closed report is takeable exactly once — the hook fabric workers
	// use to ship the residual to the dispatcher.
	report, ok := svr.TakeDriftReport(pred.SpecHash)
	if !ok {
		t.Fatalf("no drift report closed for %s", pred.SpecHash)
	}
	if math.IsNaN(report.ResidualC) || math.Abs(report.ResidualC) > pred.Prediction.TransientPeakC.Bound {
		t.Errorf("residual %g °C outside the model bound %g", report.ResidualC, pred.Prediction.TransientPeakC.Bound)
	}
	if report.Violated {
		t.Errorf("report flags a violation: %+v", report)
	}
	if report.BoundC != pred.Prediction.TransientPeakC.Bound {
		t.Errorf("report bound %g, want the prediction's %g", report.BoundC, pred.Prediction.TransientPeakC.Bound)
	}
	if _, again := svr.TakeDriftReport(pred.SpecHash); again {
		t.Error("drift report taken twice")
	}

	// Re-arm and replay: the second run is a result-cache hit, and a cached
	// result must still close the pending prediction.
	if resp, body := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-predict status %d: %s", resp.StatusCode, body)
	}
	runResp2, runBody2 := postJSON(t, ts.URL+"/v1/run", inDomainSpecJSON)
	if runResp2.StatusCode != http.StatusOK {
		t.Fatalf("cached run status %d: %s", runResp2.StatusCode, runBody2)
	}
	if got := metricTwinDriftChecks.Value(); got != checks0+2 {
		t.Errorf("after cached replay twin_drift_checks_total moved by %d, want 2", got-checks0)
	}
}

func TestDriftTrackerEvictionAndGuards(t *testing.T) {
	tr := newDriftTracker()

	// Unarmed hashes and nil results are ignored outright.
	tr.Observe("sha256:unarmed", &hotpotato.Result{PeakTemp: 70})
	tr.Observe("sha256:unarmed", nil)
	if _, ok := tr.Take("sha256:unarmed"); ok {
		t.Fatal("unarmed observation produced a report")
	}

	// Inconclusive predictions close with a residual but can never violate.
	tr.Predict("sha256:soft", hotpotato.TwinField{Estimate: 60, Bound: 0.1, Conclusive: false})
	tr.Observe("sha256:soft", &hotpotato.Result{PeakTemp: 99})
	if rep, ok := tr.Take("sha256:soft"); !ok || rep.Violated {
		t.Fatalf("inconclusive prediction: ok=%v report=%+v", ok, rep)
	}

	// A conclusive prediction outside its bound flags the violation.
	tr.Predict("sha256:hard", hotpotato.TwinField{Estimate: 60, Bound: 1, Conclusive: true})
	tr.Observe("sha256:hard", &hotpotato.Result{PeakTemp: 70})
	rep, ok := tr.Take("sha256:hard")
	if !ok || !rep.Violated || rep.ResidualC != 10 {
		t.Fatalf("violation report: ok=%v %+v", ok, rep)
	}

	// FIFO eviction: overfilling the pending set drops the oldest arm.
	tr.Predict("sha256:oldest", hotpotato.TwinField{Estimate: 1, Bound: 1, Conclusive: true})
	for i := 0; i < driftTrackerEntries; i++ {
		tr.Predict(fmt.Sprintf("sha256:filler-%d", i), hotpotato.TwinField{Estimate: 1, Bound: 1, Conclusive: true})
	}
	tr.Observe("sha256:oldest", &hotpotato.Result{PeakTemp: 50})
	if _, ok := tr.Take("sha256:oldest"); ok {
		t.Error("evicted prediction still produced a report")
	}
}
