package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	hotpotato "repro"
)

// quickSweepJSON is a 2 schedulers × 2 workloads sweep of fast 4×4 cells.
const quickSweepJSON = `{
	"base": {"platform": {"width": 4, "height": 4}},
	"axes": {
		"schedulers": [{"name": "hotpotato"}, {"name": "reactive"}],
		"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]},
			{"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 3, "work_scale": 0.3}]}
		]
	}
}`

// batchRecord is the union of all stream record shapes, keyed by "type".
type batchRecord struct {
	Type      string            `json:"type"`
	Total     int               `json:"total"`
	Index     int               `json:"index"`
	Hash      string            `json:"hash"`
	Status    string            `json:"status"`
	Cached    bool              `json:"cached"`
	Error     string            `json:"error"`
	Result    *hotpotato.Result `json:"result"`
	Done      int               `json:"done"`
	Completed int               `json:"completed"`
	Failed    int               `json:"failed"`
	Canceled  int               `json:"canceled"`
	CacheHits int               `json:"cache_hits"`
	RequestID string            `json:"request_id"`
	// Pruned stays raw because the wire key is a bool on result records
	// ("pruned": true) and a counter on the summary ("pruned": 2).
	Pruned json.RawMessage          `json:"pruned"`
	Prune  *hotpotato.PruneDecision `json:"prune"`
}

// postBatch streams a sweep and decodes every NDJSON record.
func postBatch(t *testing.T, url, body string) (*http.Response, []batchRecord) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var records []batchRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec batchRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, records
}

// TestBatchStreamsSweep: the 2×2 sweep streams one header, four result
// records (distinct indices, all ok, hashed) and one summary, as NDJSON.
func TestBatchStreamsSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, records := postBatch(t, ts.URL+"/v1/batch", quickSweepJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	if len(records) < 6 {
		t.Fatalf("got %d records, want header + 4 results + summary", len(records))
	}
	if records[0].Type != "sweep" || records[0].Total != 4 {
		t.Errorf("first record is not the sweep header: %+v", records[0])
	}
	if records[0].RequestID == "" {
		t.Error("sweep header lacks the request ID")
	}
	last := records[len(records)-1]
	if last.Type != "summary" {
		t.Fatalf("last record is %q, want summary", last.Type)
	}
	if last.Total != 4 || last.Completed != 4 || last.Failed != 0 || last.Canceled != 0 {
		t.Errorf("summary off: %+v", last)
	}

	seen := map[int]bool{}
	for _, rec := range records[1 : len(records)-1] {
		if rec.Type != "result" {
			continue
		}
		if seen[rec.Index] {
			t.Errorf("cell %d streamed twice", rec.Index)
		}
		seen[rec.Index] = true
		if rec.Status != "ok" || rec.Result == nil {
			t.Errorf("cell %d: status %q error %q", rec.Index, rec.Status, rec.Error)
		}
		if !strings.HasPrefix(rec.Hash, "sha256:") {
			t.Errorf("cell %d: hash %q", rec.Index, rec.Hash)
		}
	}
	if len(seen) != 4 {
		t.Errorf("streamed %d distinct cells, want 4", len(seen))
	}
}

// TestBatchStreamsIncrementally is the acceptance criterion that the stream
// is actually a stream: with slow cells, the header (and first results) must
// arrive on the wire before the last cell finishes — observed here as
// receiving the header while the sweep's cells are still executing.
func TestBatchStreamsIncrementally(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Serial cells (1 worker), each slow enough to straddle the read.
	sweep := `{
		"base": {"platform": {"width": 4, "height": 4}, "scheduler": {"name": "hotpotato"}},
		"axes": {"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 3}]},
			{"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 2, "work_scale": 3}]},
			{"kind": "explicit", "tasks": [{"bench": "bodytrack", "threads": 2, "work_scale": 3}]}
		]}
	}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	began := time.Now()
	sc := bufio.NewScanner(resp.Body)
	var sawHeader, sawFirstResult time.Duration
	var lines int
	for sc.Scan() {
		lines++
		var rec batchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch {
		case rec.Type == "sweep":
			sawHeader = time.Since(began)
		case rec.Type == "result" && sawFirstResult == 0:
			sawFirstResult = time.Since(began)
		}
	}
	total := time.Since(began)
	if sawHeader == 0 || sawFirstResult == 0 {
		t.Fatalf("stream missing header or results (%d lines)", lines)
	}
	// The header precedes any execution; the first result lands one cell in.
	// If either only arrived with the terminal flush, the endpoint buffered
	// the whole sweep and is not streaming.
	if sawFirstResult >= total {
		t.Errorf("first result arrived only at stream end (%v of %v)", sawFirstResult, total)
	}
	if sawHeader > total/2 {
		t.Errorf("header arrived at %v of %v — stream looks buffered", sawHeader, total)
	}
}

// TestBatchCellsShareResultCache: a sweep repeating one cell (seeds axis on a
// seed-insensitive workload) coalesces onto one simulation, and re-posting
// the sweep replays everything from the cache.
func TestBatchCellsShareResultCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})

	sweep := `{
		"base": {
			"platform": {"width": 4, "height": 4},
			"scheduler": {"name": "hotpotato"},
			"workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}
		},
		"axes": {"seeds": [1, 2, 3, 4]}
	}`
	// Explicit workloads ignore seeds, so all 4 cells hash identically.
	_, records := postBatch(t, ts.URL+"/v1/batch", sweep)
	last := records[len(records)-1]
	if last.Type != "summary" || last.Completed != 4 {
		t.Fatalf("summary off: %+v", last)
	}
	if _, misses, _ := svc.Results().Stats(); misses != 1 {
		t.Errorf("identical cells missed %d times, want 1 (singleflight)", misses)
	}
	if last.CacheHits != 3 {
		t.Errorf("first sweep cache_hits = %d, want 3 coalesced cells", last.CacheHits)
	}

	// Re-post: every cell replays.
	_, records = postBatch(t, ts.URL+"/v1/batch", sweep)
	last = records[len(records)-1]
	if last.CacheHits != 4 {
		t.Errorf("re-posted sweep cache_hits = %d, want 4", last.CacheHits)
	}
	for _, rec := range records {
		if rec.Type == "result" && !rec.Cached {
			t.Errorf("cell %d not served from cache on re-post", rec.Index)
		}
	}
}

// TestBatchClientDisconnectCancels: dropping the connection mid-sweep stops
// the in-flight cells within one scheduler epoch, releasing the worker.
func TestBatchClientDisconnectCancels(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	slowSweep := `{
		"base": {"platform": {"width": 4, "height": 4}, "scheduler": {"name": "hotpotato"}},
		"axes": {"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}]},
			{"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 2, "work_scale": 100}]}
		]}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(slowSweep))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the header line to be sure the sweep is running, then vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	cancel()
	resp.Body.Close()

	// The single worker slot must free promptly: a quick follow-up run
	// completes instead of queueing behind a zombie sweep.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follow-up run after disconnect: status %d: %s", resp.StatusCode, body)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker slot never freed after batch client disconnect")
	}
}

// TestBatchSSE: Accept: text/event-stream switches the same records to SSE
// framing.
func TestBatchSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(quickSweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var events, datas int
	var sawSummary bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events++
			if strings.TrimPrefix(line, "event: ") == "summary" {
				sawSummary = true
			}
		case strings.HasPrefix(line, "data: "):
			datas++
			var rec batchRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("bad SSE data: %v\n%s", err, line)
			}
		}
	}
	if events == 0 || events != datas {
		t.Errorf("SSE framing off: %d event lines, %d data lines", events, datas)
	}
	if !sawSummary {
		t.Error("no summary event in the SSE stream")
	}
}

// TestBatchHeartbeat: an idle stream (slow single cell) emits progress
// records at the configured cadence.
func TestBatchHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BatchHeartbeat: 10 * time.Millisecond})

	sweep := `{
		"base": {
			"platform": {"width": 4, "height": 4},
			"scheduler": {"name": "hotpotato"},
			"workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 100}]}
		}
	}`
	_, records := postBatch(t, ts.URL+"/v1/batch", sweep)
	var progress int
	for _, rec := range records {
		if rec.Type == "progress" {
			progress++
			if rec.Total != 1 {
				t.Errorf("progress total %d, want 1", rec.Total)
			}
		}
	}
	if progress == 0 {
		t.Error("no progress heartbeat on a slow stream")
	}
}

// TestJobsListing: GET /v1/jobs lists jobs in submission order with the
// status filter, and an empty store lists as [].
func TestJobsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	resp, body := getJSON(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"jobs": []`) {
		t.Errorf("empty listing should marshal jobs as []: %s", body)
	}

	const jobs = 3
	for i := 0; i < jobs; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// Wait for all to finish.
	deadline := time.Now().Add(30 * time.Second)
	var listing jobList
	for {
		_, body := getJSON(t, ts.URL+"/v1/jobs?status=done")
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		if listing.Count == jobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs done", listing.Count, jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, job := range listing.Jobs {
		if job.Status != JobDone {
			t.Errorf("filtered listing contains status %q", job.Status)
		}
		if i > 0 && listing.Jobs[i-1].ID >= job.ID {
			t.Errorf("listing out of submission order: %q then %q", listing.Jobs[i-1].ID, job.ID)
		}
	}

	// The unfiltered list matches, and an impossible filter is empty not 404.
	_, body = getJSON(t, ts.URL+"/v1/jobs")
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != jobs {
		t.Errorf("unfiltered count %d, want %d", listing.Count, jobs)
	}
	resp, body = getJSON(t, ts.URL+"/v1/jobs?status=running")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty filter result: status %d: %s", resp.StatusCode, body)
	}
}

// TestBatchSummaryAlwaysLast: regression for the heartbeat-after-summary
// bug. With a heartbeat cadence far shorter than the sweep, ticks race the
// terminal record constantly; the handler must join the heartbeat goroutine
// before sending "summary", so the summary is the stream's last record on
// every run.
func TestBatchSummaryAlwaysLast(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, BatchHeartbeat: time.Millisecond})

	for i := 0; i < 5; i++ {
		_, records := postBatch(t, ts.URL+"/v1/batch", quickSweepJSON)
		if len(records) == 0 {
			t.Fatal("empty stream")
		}
		last := records[len(records)-1]
		if last.Type != "summary" {
			t.Fatalf("run %d: last record is %q, want summary", i, last.Type)
		}
		for j, rec := range records[:len(records)-1] {
			if rec.Type == "summary" {
				t.Fatalf("run %d: summary at position %d of %d is not terminal", i, j, len(records))
			}
		}
	}
}

// TestBatchSSEFraming: every SSE event's name matches the "type" field of
// the data payload it frames, the first event is the "sweep" header, and the
// last is the terminal "summary".
func TestBatchSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, BatchHeartbeat: time.Millisecond})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(quickSweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type event struct{ name, typ string }
	var events []event
	var pendingName string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			if pendingName != "" {
				t.Fatalf("event line %q follows unframed event %q", line, pendingName)
			}
			pendingName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if pendingName == "" {
				t.Fatalf("data line without a preceding event name: %q", line)
			}
			var rec batchRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("bad SSE data: %v\n%s", err, line)
			}
			events = append(events, event{pendingName, rec.Type})
			pendingName = ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 6 { // sweep + 4 results + summary
		t.Fatalf("only %d events for a 4-cell sweep", len(events))
	}
	for i, ev := range events {
		if ev.name != ev.typ {
			t.Errorf("event %d: SSE name %q but payload type %q", i, ev.name, ev.typ)
		}
	}
	if events[0].name != "sweep" {
		t.Errorf("first event %q, want sweep", events[0].name)
	}
	if last := events[len(events)-1].name; last != "summary" {
		t.Errorf("last event %q, want summary", last)
	}
}

// TestRunBatchSolverDefaultParity: with a service-level -solver default, the
// same spec must hash identically through POST /v1/run (decodeSpec applies
// the default post-WithDefaults) and POST /v1/batch (applied per expanded
// cell) — the cache key contract. The run primes the result cache; the batch
// cell must then be a cache hit, which can only happen if both endpoints
// derived the same SpecHash.
func TestRunBatchSolverDefaultParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultSolver: "dense"})

	resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}
	runHash := strings.Trim(resp.Header.Get("ETag"), `"`)
	if !strings.HasPrefix(runHash, "sha256:") {
		t.Fatalf("run ETag %q is not a spec hash", runHash)
	}

	sweep := `{"base": ` + quickSpecJSON + `}`
	_, records := postBatch(t, ts.URL+"/v1/batch", sweep)
	var cell *batchRecord
	for i := range records {
		if records[i].Type == "result" {
			cell = &records[i]
		}
	}
	if cell == nil {
		t.Fatal("no result record in the batch stream")
	}
	if cell.Hash != runHash {
		t.Errorf("batch cell hash %q != run hash %q: endpoints disagree on the canonical spec", cell.Hash, runHash)
	}
	if !cell.Cached {
		t.Error("batch cell missed the cache primed by /v1/run: cache keys diverge between endpoints")
	}
}
