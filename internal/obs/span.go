package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// span.go is the hierarchical span tracer: dependency-free wall-clock phase
// timing for one run (service request → queue wait → platform build →
// ExecuteSpec → per-epoch decide/step), recorded into a bounded in-memory
// SpanRecorder and exported as a JSON tree (GET /v1/jobs/{id}/spans) or JSON
// Lines (hotpotato-sim -spans). The granularity contract matches the epoch
// tracer: one span per scheduler epoch at most, never one per slice, so the
// simulator's slice loop stays allocation-free.
//
// Every Span method and SpanRecorder.Start are nil-safe: a nil recorder
// starts nil spans, and a nil *Span silently ignores StartChild / SetAttr /
// SetError / End. Uninstrumented code paths therefore cost one nil check,
// with no conditional plumbing at the call sites.

// SpanID identifies a span within one SpanRecorder. IDs are assigned
// sequentially from 1; 0 means "no span" (the parent of a root).
type SpanID int64

// DefaultSpanDepth is the SpanRecorder capacity when none is given. A span
// per scheduler epoch at the paper's 0.5 ms cadence makes this ~4 s of
// simulated time plus the handful of service-phase spans.
const DefaultSpanDepth = 8192

// Span is one live timed phase. Spans are created by SpanRecorder.Start or
// Span.StartChild, annotated with SetAttr/SetError, and closed with End.
// A Span is safe for concurrent use; in practice one goroutine writes it
// while the recorder snapshots it from another (the HTTP service reads a
// job's spans mid-run).
type Span struct {
	rec    *SpanRecorder
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	errs  string
	dur   time.Duration
	ended bool
}

// ID returns the span's recorder-scoped ID (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// StartChild starts a new span under s. Nil-safe: a nil s returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.start(name, s.id)
}

// SetAttr attaches one key-value annotation. Nil-safe. Values should be
// JSON-encodable plain data (numbers, strings, bools).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetError flags the span as failed with err's message. A nil s or nil err
// is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errs = err.Error()
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Nil-safe and idempotent — the
// first End wins, so `defer span.End()` composes with explicit early Ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// record snapshots the span. An un-ended span reports its running duration
// and Done=false, so mid-run readers see live phase timings.
func (s *Span) record() SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  s.dur.Nanoseconds(),
		Done:        s.ended,
		Error:       s.errs,
	}
	if !s.ended {
		r.DurationNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			r.Attrs[k] = v
		}
	}
	return r
}

// SpanRecord is the exported plain-data view of one span — the JSONL line
// format of `hotpotato-sim -spans` and the node payload of the span tree.
type SpanRecord struct {
	ID          SpanID         `json:"id"`
	Parent      SpanID         `json:"parent,omitempty"`
	Name        string         `json:"name"`
	StartUnixNS int64          `json:"start_unix_ns"`
	DurationNS  int64          `json:"duration_ns"`
	Done        bool           `json:"done"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// Duration returns the recorded duration as a time.Duration.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNS) }

// SpanNode is one node of the span tree: a record plus its children, in
// start order.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// SpanRecorder collects the spans of one run into a bounded in-memory store.
// Recording is cheap (one mutex-guarded append per span, at most one span
// per scheduler epoch) and never blocks on readers; once the capacity is
// reached further spans are counted as dropped but still function as live
// Spans — their timings simply are not retained. Safe for concurrent use.
type SpanRecorder struct {
	mu      sync.Mutex
	spans   []*Span
	grafted []SpanRecord // completed records imported from other processes
	nextID  SpanID
	dropped int64
}

// NewSpanRecorder returns a recorder retaining up to `capacity` spans
// (capacity ≤ 0 selects DefaultSpanDepth).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanDepth
	}
	return &SpanRecorder{spans: make([]*Span, 0, capacity)}
}

// Start begins a new root span. Nil-safe: a nil recorder returns a nil span,
// and every operation on that span is a no-op.
func (r *SpanRecorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	return r.start(name, 0)
}

func (r *SpanRecorder) start(name string, parent SpanID) *Span {
	r.mu.Lock()
	r.nextID++
	s := &Span{rec: r, id: r.nextID, parent: parent, name: name, start: time.Now()}
	if len(r.spans)+len(r.grafted) < cap(r.spans) {
		r.spans = append(r.spans, s)
	} else {
		r.dropped++
		metricSpansDropped.Inc()
	}
	r.mu.Unlock()
	return s
}

// Graft imports completed span records exported by another process's
// recorder — the dispatcher-side merge of a worker's per-cell spans. Every
// record is re-numbered into r's own ID space (remote recorders all count
// from 1, so raw IDs would collide); parent links within the batch are
// preserved, and records whose parent is not in the batch become children of
// `parent` (0 grafts them as additional roots). Grafted records count
// against the recorder's capacity and the overflow against Dropped. Returns
// how many records were retained.
func (r *SpanRecorder) Graft(parent SpanID, records []SpanRecord) int {
	if r == nil || len(records) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	remap := make(map[SpanID]SpanID, len(records))
	for _, rec := range records {
		r.nextID++
		remap[rec.ID] = r.nextID
	}
	kept := 0
	for _, rec := range records {
		if len(r.spans)+len(r.grafted) >= cap(r.spans) {
			r.dropped++
			metricSpansDropped.Inc()
			continue
		}
		rec.ID = remap[rec.ID]
		if mapped, ok := remap[rec.Parent]; ok && rec.Parent != 0 {
			rec.Parent = mapped
		} else {
			rec.Parent = parent
		}
		if rec.Attrs != nil { // records share the caller's maps; copy before keeping
			attrs := make(map[string]any, len(rec.Attrs))
			for k, v := range rec.Attrs {
				attrs[k] = v
			}
			rec.Attrs = attrs
		}
		r.grafted = append(r.grafted, rec)
		kept++
	}
	return kept
}

// Len returns how many spans are retained.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans) + len(r.grafted)
}

// Total returns how many spans were ever started.
func (r *SpanRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(r.nextID)
}

// Dropped returns how many spans exceeded the capacity and were not retained.
func (r *SpanRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Records snapshots every retained span in start order (grafted remote
// records follow the local spans, in graft order). Un-ended spans report
// their running duration with Done=false.
func (r *SpanRecorder) Records() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := append([]*Span(nil), r.spans...)
	grafted := append([]SpanRecord(nil), r.grafted...)
	r.mu.Unlock()
	out := make([]SpanRecord, len(spans), len(spans)+len(grafted))
	for i, s := range spans {
		out[i] = s.record()
	}
	return append(out, grafted...)
}

// Tree assembles the retained spans into their hierarchy, children in start
// order. Spans whose parent was dropped by the capacity bound surface as
// additional roots rather than disappearing.
func (r *SpanRecorder) Tree() []*SpanNode {
	records := r.Records()
	nodes := make(map[SpanID]*SpanNode, len(records))
	for _, rec := range records {
		nodes[rec.ID] = &SpanNode{SpanRecord: rec}
	}
	var roots []*SpanNode
	for _, rec := range records { // records are in start order; so are children
		n := nodes[rec.ID]
		if parent, ok := nodes[rec.Parent]; ok && rec.Parent != rec.ID {
			parent.Children = append(parent.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	return roots
}

// WriteJSONL writes every retained span as one JSON line in start order —
// the `hotpotato-sim -spans out.jsonl` dump format.
func (r *SpanRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// spanCtxKey carries the current *Span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span; child
// phases started via StartSpan (or Span.StartChild on the extracted span)
// nest under it. A nil s returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context is
// uninstrumented. The nil result is usable: all Span methods no-op on nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. On an uninstrumented context it returns
// (ctx, nil) — the caller unconditionally defers span.End().
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}
