package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/thermal
cpu: AMD EPYC 7B13
BenchmarkHotloopStepAlloc-8   	   21862	     54093 ns/op	    4424 B/op	       4 allocs/op
BenchmarkHotloopStepTo-8      	   22832	     52205 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/thermal	3.456s
pkg: repro
BenchmarkHotloopSweep-8   	       1	1234567890 ns/op	     99.5 peak_speedup_%	 1000 B/op	      10 allocs/op
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q/%q/%q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "HotloopStepTo" || b.Procs != 8 || b.Package != "repro/internal/thermal" {
		t.Errorf("benchmark = %+v", b)
	}
	if b.Iterations != 22832 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	for unit, want := range map[string]float64{"ns/op": 52205, "B/op": 0, "allocs/op": 0} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if got := doc.Benchmarks[2].Metrics["peak_speedup_%"]; got != 99.5 {
		t.Errorf("extra metric = %v, want 99.5", got)
	}
	if doc.Benchmarks[2].Package != "repro" {
		t.Errorf("package tracking broke: %q", doc.Benchmarks[2].Package)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken-8 not-a-number 5 ns/op",
		"BenchmarkNoPairs-8 100 alpha beta",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

// TestParseBenchLineTolerance covers the loosened parsing rules: dashes in
// sub-benchmark names, missing -benchmem columns, and stray tokens that used
// to discard the entire line.
func TestParseBenchLineTolerance(t *testing.T) {
	cases := []struct {
		line    string
		name    string
		procs   int
		iter    int64
		metrics map[string]float64
	}{
		{
			line:    "BenchmarkEvaluate/ring-scope-l1-8 5000 240113 ns/op",
			name:    "Evaluate/ring-scope-l1",
			procs:   8,
			iter:    5000,
			metrics: map[string]float64{"ns/op": 240113},
		},
		{
			line:    "BenchmarkHotloopStepTo-8 22832 52205 ns/op",
			name:    "HotloopStepTo",
			procs:   8,
			iter:    22832,
			metrics: map[string]float64{"ns/op": 52205},
		},
		{
			line:    "BenchmarkOdd-8 100 5 ns/op trailing",
			name:    "Odd",
			procs:   8,
			iter:    100,
			metrics: map[string]float64{"ns/op": 5},
		},
		{
			line:    "BenchmarkStray-8 100 ??? 5 ns/op 12 B/op",
			name:    "Stray",
			procs:   8,
			iter:    100,
			metrics: map[string]float64{"ns/op": 5, "B/op": 12},
		},
		{
			line:    "BenchmarkBare-8 100 7 3 ns/op",
			name:    "Bare",
			procs:   8,
			iter:    100,
			metrics: map[string]float64{"ns/op": 3},
		},
	}
	for _, tc := range cases {
		b, ok := parseBenchLine(tc.line)
		if !ok {
			t.Errorf("rejected %q", tc.line)
			continue
		}
		if b.Name != tc.name || b.Procs != tc.procs || b.Iterations != tc.iter {
			t.Errorf("%q: parsed %+v", tc.line, b)
		}
		if len(b.Metrics) != len(tc.metrics) {
			t.Errorf("%q: metrics %v, want %v", tc.line, b.Metrics, tc.metrics)
			continue
		}
		for unit, want := range tc.metrics {
			if got := b.Metrics[unit]; got != want {
				t.Errorf("%q: %s = %v, want %v", tc.line, unit, got, want)
			}
		}
	}
}

// TestParseFixtures replays captured `go test -bench` output through the full
// parser, pinning the missing-column and dashed-name behavior end to end.
func TestParseFixtures(t *testing.T) {
	t.Run("no_benchmem", func(t *testing.T) {
		doc := parseFixture(t, "testdata/no_benchmem.txt")
		if len(doc.Benchmarks) != 2 {
			t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
		}
		b := doc.Benchmarks[0]
		if b.Name != "HotloopStepTo" || b.Package != "repro/internal/thermal" {
			t.Errorf("benchmark = %+v", b)
		}
		if got := b.Metrics["ns/op"]; got != 52205 {
			t.Errorf("ns/op = %v, want 52205", got)
		}
		if _, ok := b.Metrics["B/op"]; ok {
			t.Errorf("phantom B/op metric in %v", b.Metrics)
		}
	})
	t.Run("dash_subbench", func(t *testing.T) {
		doc := parseFixture(t, "testdata/dash_subbench.txt")
		if len(doc.Benchmarks) != 3 {
			t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
		}
		wantNames := []string{
			"Evaluate/ring-scope-l1",
			"Evaluate/tau-1ms-grid-4x4",
			"Evaluate/noise-0.5",
		}
		for i, want := range wantNames {
			if got := doc.Benchmarks[i].Name; got != want {
				t.Errorf("benchmark %d name = %q, want %q", i, got, want)
			}
			if procs := doc.Benchmarks[i].Procs; procs != 8 {
				t.Errorf("benchmark %d procs = %d, want 8", i, procs)
			}
		}
		if got := doc.Benchmarks[2].Metrics["B/op"]; got != 12 {
			t.Errorf("partial -benchmem columns: B/op = %v, want 12", got)
		}
	})
}

func parseFixture(t *testing.T, path string) *File {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := parse(bufio.NewScanner(strings.NewReader(string(raw))), nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// writeBenchFile marshals a File into a temp file and returns its path.
func writeBenchFile(t *testing.T, doc File) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchDoc(metrics ...Benchmark) File {
	return File{GOOS: "linux", GOARCH: "amd64", Benchmarks: metrics}
}

func TestCompareFiles(t *testing.T) {
	oldDoc := benchDoc(
		Benchmark{Package: "repro/internal/thermal", Name: "HotloopStepTo", Procs: 8,
			Iterations: 1000, Metrics: map[string]float64{"ns/op": 50000, "allocs/op": 0}},
		Benchmark{Package: "repro/internal/sim", Name: "HotloopEpoch", Procs: 8,
			Iterations: 1000, Metrics: map[string]float64{"ns/op": 100000, "allocs/op": 2}},
		Benchmark{Package: "repro", Name: "Removed", Procs: 8,
			Iterations: 10, Metrics: map[string]float64{"ns/op": 7, "allocs/op": 1}},
	)

	t.Run("within_threshold", func(t *testing.T) {
		newDoc := benchDoc(
			Benchmark{Package: "repro/internal/thermal", Name: "HotloopStepTo", Procs: 8,
				Iterations: 1000, Metrics: map[string]float64{"ns/op": 52000, "allocs/op": 0}},
			Benchmark{Package: "repro/internal/sim", Name: "HotloopEpoch", Procs: 8,
				Iterations: 1000, Metrics: map[string]float64{"ns/op": 95000, "allocs/op": 2}},
			Benchmark{Package: "repro", Name: "Added", Procs: 8,
				Iterations: 10, Metrics: map[string]float64{"ns/op": 9, "allocs/op": 0}},
		)
		var buf strings.Builder
		regressed, err := compareFiles(&buf, writeBenchFile(t, oldDoc), writeBenchFile(t, newDoc), 10)
		if err != nil {
			t.Fatal(err)
		}
		if regressed {
			t.Errorf("+4%% flagged as regression:\n%s", buf.String())
		}
		out := buf.String()
		for _, want := range []string{"HotloopStepTo", "+4.00%", "HotloopEpoch", "-5.00%", "new", "gone", "ok: 2 benchmarks compared"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("regression_fails", func(t *testing.T) {
		newDoc := benchDoc(
			Benchmark{Package: "repro/internal/thermal", Name: "HotloopStepTo", Procs: 8,
				Iterations: 1000, Metrics: map[string]float64{"ns/op": 60000, "allocs/op": 3}},
		)
		var buf strings.Builder
		regressed, err := compareFiles(&buf, writeBenchFile(t, oldDoc), writeBenchFile(t, newDoc), 10)
		if err != nil {
			t.Fatal(err)
		}
		if !regressed {
			t.Errorf("+20%% not flagged as regression:\n%s", buf.String())
		}
		if !strings.Contains(buf.String(), "FAIL: HotloopStepTo ns/op regressed 20.00%") {
			t.Errorf("missing FAIL line:\n%s", buf.String())
		}
	})

	t.Run("no_overlap_is_error", func(t *testing.T) {
		newDoc := benchDoc(
			Benchmark{Package: "other", Name: "Unrelated", Procs: 8,
				Iterations: 1, Metrics: map[string]float64{"ns/op": 1}},
		)
		var buf strings.Builder
		if _, err := compareFiles(&buf, writeBenchFile(t, oldDoc), writeBenchFile(t, newDoc), 10); err == nil {
			t.Error("disjoint benchmark sets should be an error, got nil")
		}
	})

	t.Run("missing_file_is_error", func(t *testing.T) {
		var buf strings.Builder
		if _, err := compareFiles(&buf, "/nonexistent.json", writeBenchFile(t, oldDoc), 10); err == nil {
			t.Error("missing old file should be an error, got nil")
		}
	})
}

func TestDelta(t *testing.T) {
	cases := []struct {
		old, new float64
		want     string
	}{
		{0, 0, "~"},
		{0, 5, "+inf"},
		{100, 110, "+10.00%"},
		{100, 90, "-10.00%"},
		{100, 100, "+0.00%"},
	}
	for _, tc := range cases {
		if got := delta(tc.old, tc.new); got != tc.want {
			t.Errorf("delta(%v, %v) = %q, want %q", tc.old, tc.new, got, tc.want)
		}
	}
}
