package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
)

// Config sizes the server.
type Config struct {
	// Workers bounds the number of simulations executing at once, sync and
	// async alike — the serving-side twin of ExperimentOptions.Workers.
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the async job queue; POST /v1/jobs answers
	// 429 Too Many Requests once it is full. 0 means 64.
	QueueDepth int
	// JobRetention is how long finished jobs (done, failed, canceled) stay
	// queryable via GET /v1/jobs/{id} before the janitor evicts them —
	// without eviction a long-running server grows its job store without
	// bound. 0 means 10 minutes; negative disables eviction (jobs are kept
	// forever, the pre-retention behaviour).
	JobRetention time.Duration
	// TraceDepth is how many scheduler epochs each async job's ring tracer
	// retains for GET /v1/jobs/{id}/trace. 0 means obs.DefaultTraceDepth;
	// negative disables per-job tracing (the endpoint answers 404).
	TraceDepth int
	// SpanDepth is how many spans each async job's recorder retains for
	// GET /v1/jobs/{id}/spans (one span per service phase plus one per
	// scheduler epoch). 0 means obs.DefaultSpanDepth; negative disables
	// per-job span tracing (the endpoint answers 404).
	SpanDepth int
	// DefaultSolver is applied to specs whose platform.thermal.solver is
	// empty: "auto", "dense" or "sparse" (thermal.Solver* constants). ""
	// leaves specs untouched, which means auto selection. The solver is
	// part of the platform cache key, so two specs differing only in
	// solver get distinct platforms.
	DefaultSolver string
	// ResultCacheEntries bounds the content-addressed result cache (LRU over
	// SpecHash keys) shared by POST /v1/run and /v1/batch cells. 0 means
	// DefaultResultCacheEntries; negative disables result caching (every
	// request simulates, ETag/304 still works because the hash is computed
	// per request).
	ResultCacheEntries int
	// MaxSweepCells is the admission limit of POST /v1/batch: sweeps whose
	// cross-product exceeds it are answered 413 before any cell runs. 0
	// means DefaultMaxSweepCells; values above hotpotato.MaxSweepCells are
	// clamped to it.
	MaxSweepCells int
	// BatchHeartbeat is how often an idle /v1/batch stream emits a progress
	// record so proxies keep the connection alive during long cells. 0 means
	// DefaultBatchHeartbeat; negative disables heartbeats.
	BatchHeartbeat time.Duration
	// Logger receives the server's structured log stream (access lines, job
	// lifecycle, shutdown). nil means a no-op logger — tests and embedders
	// that do not care stay quiet.
	Logger *slog.Logger
	// TwinModel is the loaded analytical-twin calibration artifact backing
	// POST /v1/predict and sweep pruning (the -twin-model flag loads it via
	// hotpotato.LoadTwinModelFile). nil disables both: /v1/predict answers
	// 503 and sweeps with prune_above_temp run unpruned.
	TwinModel *hotpotato.TwinModel
}

// DefaultJobRetention is how long terminal jobs stay queryable when
// Config.JobRetention is zero.
const DefaultJobRetention = 10 * time.Minute

// DefaultMaxSweepCells is the /v1/batch admission limit when
// Config.MaxSweepCells is zero — deliberately far below the structural
// hotpotato.MaxSweepCells bound, because every admitted cell is a simulation
// this server has promised to run.
const DefaultMaxSweepCells = 1024

// DefaultBatchHeartbeat is the idle-stream progress cadence when
// Config.BatchHeartbeat is zero.
const DefaultBatchHeartbeat = 10 * time.Second

// Server executes RunSpec documents over HTTP:
//
//	POST /v1/run        synchronous: body RunSpec, response {result} (+ETag/304)
//	POST /v1/batch      sweep: body SweepSpec, streamed NDJSON/SSE per-cell results
//	POST /v1/jobs       asynchronous: body RunSpec, response 202 {id, status}
//	GET  /v1/jobs       job listing (?status= filter)
//	GET  /v1/jobs/{id}  job status/result
//	GET  /healthz       liveness + queue depth + cache stats
//
// All executions go through one semaphore of Config.Workers slots, so the
// server never runs more simulations than the host has been budgeted for,
// no matter how requests arrive. Platforms are shared between requests via
// a PlatformCache. Shutdown stops intake, drains, then force-cancels
// stragglers through their run contexts.
type Server struct {
	cfg    Config
	logger *slog.Logger
	cache  *PlatformCache
	// twin is the analytical-twin model (Config.TwinModel); nil when the
	// server runs without one.
	twin *hotpotato.TwinModel
	// results caches finished runs by SpecHash; nil when
	// Config.ResultCacheEntries is negative.
	results *ResultCache
	// drift pairs /v1/predict answers with later full runs of the same
	// SpecHash to track the twin's online residual (see drift.go).
	drift *driftTracker
	jobs  *jobStore
	queue chan *jobState
	sem   chan struct{}

	// baseCtx parents every async run (and is grafted onto sync request
	// contexts), so cancelRuns aborts all in-flight simulations.
	baseCtx    context.Context
	cancelRuns context.CancelFunc

	stop    chan struct{} // closed by Shutdown: stop intake, wind down workers
	closed  atomic.Bool
	workers sync.WaitGroup // async worker goroutines
	runs    sync.WaitGroup // in-flight sync handlers
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.JobRetention == 0 {
		cfg.JobRetention = DefaultJobRetention
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.MaxSweepCells == 0 {
		cfg.MaxSweepCells = DefaultMaxSweepCells
	}
	if cfg.MaxSweepCells > hotpotato.MaxSweepCells {
		cfg.MaxSweepCells = hotpotato.MaxSweepCells
	}
	if cfg.BatchHeartbeat == 0 {
		cfg.BatchHeartbeat = DefaultBatchHeartbeat
	}
	var results *ResultCache
	if cfg.ResultCacheEntries >= 0 {
		results = NewResultCache(cfg.ResultCacheEntries)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		logger:     cfg.Logger,
		cache:      NewPlatformCache(),
		twin:       cfg.TwinModel,
		results:    results,
		drift:      newDriftTracker(),
		jobs:       newJobStore(),
		queue:      make(chan *jobState, cfg.QueueDepth),
		sem:        make(chan struct{}, cfg.Workers),
		baseCtx:    baseCtx,
		cancelRuns: cancel,
		stop:       make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	if cfg.JobRetention > 0 {
		s.workers.Add(1)
		go s.janitor()
	}
	return s
}

// janitor periodically evicts jobs that have been terminal for longer than
// Config.JobRetention, bounding the job store on a long-running server.
// Sweeping at a quarter of the retention keeps the actual lifetime within
// 1.25× the configured value.
func (s *Server) janitor() {
	defer s.workers.Done()
	interval := s.cfg.JobRetention / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.jobs.evictTerminal(now.Add(-s.cfg.JobRetention))
		}
	}
}

// Cache exposes the platform cache (introspection and tests).
func (s *Server) Cache() *PlatformCache { return s.cache }

// Results exposes the result cache (introspection and tests); nil when
// result caching is disabled.
func (s *Server) Results() *ResultCache { return s.results }

// Handler returns the HTTP routes, wrapped in the observability middleware
// (request-ID propagation + one structured access-log line per request).
func (s *Server) Handler() http.Handler {
	obs.Default().PublishExpvar("hotpotato")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleJobSpans)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return s.withObservability(mux)
}

// worker is one slot of the async pool: it claims queued jobs until Shutdown,
// then drains whatever is still queued as canceled.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.stop:
			for {
				select {
				case j := <-s.queue:
					j.finish(JobCanceled, nil, nil, errors.New("server shutting down"))
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *jobState) {
	metricQueueDepth.Set(float64(len(s.queue)))
	j.queueSpan.End()
	queueWait := time.Since(j.submittedAt)
	j.setStatus(JobRunning)
	logger := s.logger.With("job_id", j.job.ID, "request_id", j.job.RequestID)
	logger.Info("job started", "queue_wait_ms", float64(queueWait.Nanoseconds())/1e6)

	began := time.Now()
	// A typed-nil *RingTracer must become a nil interface, or the simulator
	// would see a non-nil tracer and call through the nil pointer.
	var tracer hotpotato.EpochTracer
	if j.tracer != nil {
		tracer = j.tracer
	}
	ctx := obs.ContextWithSpan(s.baseCtx, j.rootSpan)
	ctx = obs.ContextWithLogger(ctx, logger)
	res, prof, err := s.execute(ctx, j.spec, tracer)
	metricJobLatency.Observe(time.Since(began).Seconds())
	metricJobsFinished.Inc()

	prof.QueueNS += queueWait.Nanoseconds()
	prof.TotalNS = time.Since(j.submittedAt).Nanoseconds()
	status := JobDone
	switch {
	case err == nil:
	case errors.Is(err, hotpotato.ErrCanceled):
		status = JobCanceled
	default:
		status = JobFailed
	}
	j.finish(status, res, prof, err)
	logger.Info("job finished",
		"status", string(status),
		"duration_ms", float64(prof.TotalNS-prof.QueueNS)/1e6,
		"epochs", prof.Epochs,
		"error", errString(err),
	)
}

// errString renders err for a log attribute ("" when nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// execute runs one validated spec under the concurrency bound. The semaphore
// wait respects ctx, so a client that disconnects while queued never
// occupies a slot at all. The returned RunProfile is always non-nil and
// carries the phase breakdown measured so far (slot wait, platform build,
// decide/step split); callers fold in what only they can see (job-queue
// wait, end-to-end total). If ctx carries a span, each phase also records a
// child span.
func (s *Server) execute(ctx context.Context, spec hotpotato.RunSpec, tracer hotpotato.EpochTracer) (*hotpotato.Result, *obs.RunProfile, error) {
	prof := &obs.RunProfile{}
	root := obs.SpanFromContext(ctx)

	slotSpan := root.StartChild("slot_wait")
	slotBegan := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		err := fmt.Errorf("%w before starting: %v", hotpotato.ErrCanceled, context.Cause(ctx))
		slotSpan.SetError(err)
		slotSpan.End()
		return nil, prof, err
	}
	defer func() { <-s.sem }()
	slotSpan.End()
	prof.QueueNS += time.Since(slotBegan).Nanoseconds()

	spec = spec.WithDefaults()
	buildSpan := root.StartChild("platform_build")
	buildBegan := time.Now()
	plat, err := s.cache.Get(spec.Platform)
	prof.BuildNS = time.Since(buildBegan).Nanoseconds()
	buildSpan.SetError(err)
	buildSpan.End()
	if err != nil {
		return nil, prof, err
	}

	execCtx, execSpan := obs.StartSpan(ctx, "execute_spec")
	execBegan := time.Now()
	res, err := hotpotato.ExecuteSpecOnPlatformTraced(execCtx, plat, spec, tracer)
	execNS := time.Since(execBegan).Nanoseconds()
	execSpan.SetError(err)
	execSpan.End()
	if res != nil {
		prof.DecideNS = res.SchedulerHostTime.Nanoseconds()
		prof.Epochs = res.SchedulerInvocations
		if prof.StepNS = execNS - prof.DecideNS; prof.StepNS < 0 {
			prof.StepNS = 0
		}
	} else {
		prof.StepNS = execNS
	}
	return res, prof, err
}

// decodeSpec reads, defaults and validates the request body; on failure it
// writes the 400 (every invalid field at once, via errors.Join) and reports
// !ok.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (hotpotato.RunSpec, bool) {
	var spec hotpotato.RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		metricBadRequests.Inc()
		obs.LoggerFrom(r.Context()).Warn("bad request", "reason", "undecodable RunSpec", "error", err.Error())
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding RunSpec: %w", err))
		return spec, false
	}
	spec = spec.WithDefaults()
	// The service-level solver default fills only specs that left the choice
	// open. The shared helper is the same one /v1/batch applies per expanded
	// cell (and the fabric dispatcher fleet-wide), so one spec yields one
	// SpecHash through every door.
	fabric.ApplyDefaultSolver(&spec, s.cfg.DefaultSolver)
	if err := spec.Validate(); err != nil {
		metricBadRequests.Inc()
		obs.LoggerFrom(r.Context()).Warn("bad request", "reason", "invalid RunSpec", "error", err.Error())
		writeError(w, http.StatusBadRequest, err)
		return spec, false
	}
	return spec, true
}

// runResponse is the envelope of POST /v1/run.
type runResponse struct {
	Result *hotpotato.Result `json:"result"`
	// Profile is the wall-clock breakdown of the run (queue/build/decide/
	// step) — the same summary async jobs carry. Absent on cache hits: a
	// replayed result has no phases of its own.
	Profile *obs.RunProfile `json:"profile,omitempty"`
	// Cached marks a result served from the content-addressed result cache
	// instead of a fresh simulation.
	Cached bool `json:"cached,omitempty"`
	// Error is set when the run ended early (e.g. MaxTime); the partial
	// result is still included.
	Error string `json:"error,omitempty"`
}

// cachedExecute runs one validated spec through the result cache: a fulfilled
// entry for hash replays instantly (cached=true), an in-flight entry
// coalesces onto its leader, and otherwise the caller becomes the leader and
// simulates under the usual concurrency bound. Only clean completions and
// MaxTime stops are cached; a leader whose run fails any other way abandons
// the slot and followers fall back to simulating themselves, so one
// disconnected client never poisons a hash for everyone behind it. A nil
// result cache (caching disabled) or empty hash degrades to a plain execute.
//
// Every clean completion — fresh or replayed — is also offered to the twin
// drift tracker: if /v1/predict answered for this hash earlier, the residual
// between simulation and prediction is recorded (once per prediction; see
// drift.go).
func (s *Server) cachedExecute(ctx context.Context, spec hotpotato.RunSpec, hash string) (res *hotpotato.Result, prof *obs.RunProfile, cached bool, err error) {
	defer func() {
		if err == nil {
			s.drift.Observe(hash, res)
		}
	}()
	if s.results == nil || hash == "" {
		res, prof, err := s.execute(ctx, spec, nil)
		return res, prof, false, err
	}
	entry, leader := s.results.Lookup(hash)
	if leader {
		res, prof, err := s.execute(ctx, spec, nil)
		if err == nil || errors.Is(err, hotpotato.ErrTimeout) {
			s.results.Fulfill(hash, res, errString(err))
		} else {
			s.results.Abandon(hash)
		}
		return res, prof, false, err
	}
	res, errMsg, ok := entry.Wait(ctx)
	if !ok {
		if ctx.Err() != nil {
			return nil, &obs.RunProfile{}, false,
				fmt.Errorf("%w before starting: %v", hotpotato.ErrCanceled, context.Cause(ctx))
		}
		// The leader abandoned (its run failed transiently); run it ourselves
		// without re-entering the cache, so concurrent fallbacks cannot
		// re-elect each other forever. This uncached re-run is a miss the
		// Lookup above did not count (only leaders count there).
		s.results.RecordAbandonedFallback()
		res, prof, err := s.execute(ctx, spec, nil)
		return res, prof, false, err
	}
	s.results.RecordHit()
	if errMsg != "" {
		err = cachedError{msg: errMsg}
	}
	return res, &obs.RunProfile{}, true, err
}

// specETag is the entity tag of a spec's response: the quoted SpecHash. The
// simulation is deterministic in the canonical spec, so the tag never goes
// stale and an If-None-Match match can answer 304 unconditionally.
func specETag(hash string) string { return `"` + hash + `"` }

// ifNoneMatchHas reports whether the If-None-Match header value matches etag
// ("*", or any listed tag, weak comparison).
func ifNoneMatchHas(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	// decodeSpec validated the spec, so hashing cannot fail.
	hash, _ := hotpotato.SpecHash(spec)
	etag := specETag(hash)
	if match := r.Header.Get("If-None-Match"); match != "" && ifNoneMatchHas(match, etag) {
		// Content-addressed: the tag is the spec's identity and the result is
		// deterministic, so a matching tag is current by construction — no
		// execution, no cache consultation.
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	// The run dies with the request (client disconnect, deadline) or with
	// the server (shutdown force-cancel), whichever comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.baseCtx, cancel)()

	s.runs.Add(1)
	defer s.runs.Done()

	metricRunRequests.Inc()
	began := time.Now()
	res, prof, cached, err := s.cachedExecute(ctx, spec, hash)
	metricRunLatency.Observe(time.Since(began).Seconds())
	if cached {
		prof = nil
	} else {
		prof.TotalNS = time.Since(began).Nanoseconds()
	}
	switch {
	case err == nil:
		w.Header().Set("ETag", etag)
		writeJSON(w, http.StatusOK, runResponse{Result: res, Profile: prof, Cached: cached})
	case errors.Is(err, hotpotato.ErrTimeout):
		// The simulation hit its own MaxTime: a complete answer about an
		// incomplete workload, not a transport failure.
		w.Header().Set("ETag", etag)
		writeJSON(w, http.StatusOK, runResponse{Result: res, Profile: prof, Cached: cached, Error: err.Error()})
	case errors.Is(err, hotpotato.ErrCanceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	j := s.jobs.create(spec, requestIDFrom(r.Context()))
	if s.cfg.TraceDepth >= 0 {
		j.tracer = obs.NewRingTracer(s.cfg.TraceDepth)
	}
	if s.cfg.SpanDepth >= 0 {
		j.spans = obs.NewSpanRecorder(s.cfg.SpanDepth)
		j.rootSpan = j.spans.Start("run")
		j.rootSpan.SetAttr("job_id", j.job.ID)
		j.rootSpan.SetAttr("request_id", j.job.RequestID)
		// The middleware's trace context links this job's local span tree to
		// the distributed trace of whoever submitted it (a traceparent-bearing
		// client, or the fabric dispatcher's sweep span).
		if tc := obs.TraceContextFrom(r.Context()); tc.Valid() {
			j.rootSpan.SetAttr("trace_id", tc.TraceID)
			j.rootSpan.SetAttr("parent_span_id", tc.SpanID)
		}
		j.queueSpan = j.rootSpan.StartChild("queue_wait")
	}
	select {
	case s.queue <- j:
		metricJobsSubmitted.Inc()
		metricQueueDepth.Set(float64(len(s.queue)))
		obs.LoggerFrom(r.Context()).Info("job queued",
			"job_id", j.job.ID, "queue_depth", len(s.queue))
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		s.jobs.remove(j.job.ID)
		metricJobsRejected.Inc()
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job queue full (%d pending)", s.cfg.QueueDepth))
	}
}

// jobTrace is the envelope of GET /v1/jobs/{id}/trace.
type jobTrace struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Total is how many epochs the run has recorded so far; Dropped is how
	// many of those the bounded ring has already overwritten.
	Total   int64            `json:"total"`
	Dropped int64            `json:"dropped"`
	Events  []obs.EpochEvent `json:"events"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if j.tracer == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %q has no trace (server runs with tracing disabled)", r.PathValue("id")))
		return
	}
	snap := j.snapshot()
	writeJSON(w, http.StatusOK, jobTrace{
		ID:      snap.ID,
		Status:  snap.Status,
		Total:   j.tracer.Total(),
		Dropped: j.tracer.Dropped(),
		Events:  j.tracer.Events(),
	})
}

// jobSpans is the envelope of GET /v1/jobs/{id}/spans.
type jobSpans struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Total is how many spans the run has started; Dropped is how many of
	// those exceeded the recorder capacity and were not retained.
	Total   int64           `json:"total"`
	Dropped int64           `json:"dropped"`
	Spans   []*obs.SpanNode `json:"spans"`
}

func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if j.spans == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %q has no spans (server runs with span tracing disabled)", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = j.spans.WriteJSONL(w)
		return
	}
	snap := j.snapshot()
	writeJSON(w, http.StatusOK, jobSpans{
		ID:      snap.ID,
		Status:  snap.Status,
		Total:   j.spans.Total(),
		Dropped: j.spans.Dropped(),
		Spans:   j.spans.Tree(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// jobList is the envelope of GET /v1/jobs.
type jobList struct {
	Jobs []Job `json:"jobs"`
	// Count duplicates len(jobs) so clients paging by eye need not count.
	Count int `json:"count"`
}

// handleJobs lists known jobs in submission order, optionally filtered with
// ?status= (queued, running, done, failed, canceled). Jobs evicted by the
// retention janitor are absent — the list is a live view, not an archive.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var filter JobStatus
	if q := r.URL.Query().Get("status"); q != "" {
		filter = JobStatus(q)
		switch filter {
		case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown status filter %q (want queued, running, done, failed or canceled)", q))
			return
		}
	}
	jobs := s.jobs.list(filter)
	writeJSON(w, http.StatusOK, jobList{Jobs: jobs, Count: len(jobs)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.Stats()
	body := map[string]any{
		"status":          "ok",
		"queued":          len(s.queue),
		"workers":         s.cfg.Workers,
		"platform_hits":   hits,
		"platform_misses": misses,
	}
	if s.results != nil {
		rHits, rMisses, rEvictions := s.results.Stats()
		body["result_cache_entries"] = s.results.Len()
		body["result_cache_bytes"] = s.results.Bytes()
		body["result_cache_hits"] = rHits
		body["result_cache_misses"] = rMisses
		body["result_cache_evictions"] = rEvictions
		body["result_cache_abandoned"] = s.results.AbandonedFallbacks()
	}
	writeJSON(w, http.StatusOK, body)
}

// Shutdown stops accepting work and drains: it waits for running and queued
// jobs plus in-flight sync requests until ctx expires, then force-cancels
// the remaining simulations — each aborts within one scheduler epoch of
// simulated progress (hotpotato.ErrCanceled) — and waits for the pool to
// exit. Safe to call once; later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.logger.Info("shutdown: draining", "queued", len(s.queue))
	close(s.stop)
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.runs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelRuns()
		<-done
	}
	s.cancelRuns() // release the base context either way
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing sensible to do on error
}
