// Motivational: reproduce the paper's Fig. 2 walkthrough — the same
// two-threaded blackscholes executed (a) unmanaged at 4 GHz, (b) under TSP
// DVFS power budgeting, and (c) under synchronous thread rotation at
// τ = 0.5 ms — and print the thermal traces of the centre cores as CSV.
package main

import (
	"fmt"
	"log"
	"os"

	hotpotato "repro"
)

func main() {
	res, err := hotpotato.Fig2(20) // record every 20th slice (2 ms stride)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy, response_ms, peak_C, breaches_70C")
	report := []struct {
		name                 string
		responseMS, peakTemp float64
		breaches             bool
	}{
		{"unmanaged-4GHz", res.None.Response * 1e3, res.None.PeakTemp, res.None.Breaches},
		{"tsp-dvfs", res.TSP.Response * 1e3, res.TSP.PeakTemp, res.TSP.Breaches},
		{"rotation-0.5ms", res.Rotation.Response * 1e3, res.Rotation.PeakTemp, res.Rotation.Breaches},
	}
	for _, r := range report {
		fmt.Printf("%s, %.1f, %.1f, %v\n", r.name, r.responseMS, r.peakTemp, r.breaches)
	}

	// Thermal traces (max of the four centre cores) as CSV on stderr-free
	// stdout, one block per policy — ready for plotting.
	fmt.Println()
	fmt.Println("time_ms, unmanaged_C, tsp_C, rotation_C")
	n := len(res.None.Trace)
	if len(res.TSP.Trace) < n {
		n = len(res.TSP.Trace)
	}
	if len(res.Rotation.Trace) < n {
		n = len(res.Rotation.Trace)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(os.Stdout, "%.2f, %.2f, %.2f, %.2f\n",
			res.None.Trace[i].Time*1e3,
			res.None.Trace[i].MaxTemp,
			res.TSP.Trace[i].MaxTemp,
			res.Rotation.Trace[i].MaxTemp)
	}
}
