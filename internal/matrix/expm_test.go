package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	if got := Expm(New(3, 3)); !got.ApproxEqual(Identity(3), 1e-14) {
		t.Fatalf("e^0 =\n%v", got)
	}
}

func TestExpmDiagonal(t *testing.T) {
	d := Diagonal([]float64{1, -2, 0.5})
	got := Expm(d)
	want := Diagonal([]float64{math.E, math.Exp(-2), math.Exp(0.5)})
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatalf("e^D =\n%vwant\n%v", got, want)
	}
}

func TestExpmNilpotent(t *testing.T) {
	// For nilpotent N = [[0,1],[0,0]], e^N = I + N exactly.
	n := NewFromRows([][]float64{{0, 1}, {0, 0}})
	got := Expm(n)
	want := NewFromRows([][]float64{{1, 1}, {0, 1}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("e^N =\n%vwant\n%v", got, want)
	}
}

func TestExpmRotation(t *testing.T) {
	// e^{[[0,-θ],[θ,0]]} is a rotation by θ.
	theta := 0.7
	a := NewFromRows([][]float64{{0, -theta}, {theta, 0}})
	got := Expm(a)
	want := NewFromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if !got.ApproxEqual(want, 1e-10) {
		t.Fatalf("rotation exp =\n%vwant\n%v", got, want)
	}
}

func TestExpmLargeNormUsesScaling(t *testing.T) {
	// ‖A‖ >> 0.5 exercises the scaling-and-squaring path.
	a := Diagonal([]float64{5, -5})
	got := Expm(a)
	want := Diagonal([]float64{math.Exp(5), math.Exp(-5)})
	if !got.ApproxEqual(want, 1e-8*math.Exp(5)) {
		t.Fatalf("e^A =\n%vwant\n%v", got, want)
	}
}

// Property: for symmetric A, Expm agrees with the eigendecomposition route.
func TestPropExpmMatchesEigenRoute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := randomSymmetric(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		viaEigen := ExpmEigen(e.Vectors, e.Values, e.Vectors.Transpose(), 1.0)
		viaPade := Expm(a)
		return viaEigen.ApproxEqual(viaPade, 1e-7*(1+viaPade.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: semigroup e^{A(s+t)} = e^{As}·e^{At} for commuting arguments.
func TestPropExpmSemigroup(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomSymmetric(r, n)
		s := 0.3 + r.Float64()
		u := 0.3 + r.Float64()
		lhs := Expm(a.Scaled(s + u))
		rhs := Expm(a.Scaled(s)).Mul(Expm(a.Scaled(u)))
		return lhs.ApproxEqual(rhs, 1e-6*(1+lhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ExpmEigen with negative eigenvalues decays: ‖e^{Ct}‖ shrinks as t grows.
func TestPropExpmEigenDecay(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		aDiag := make([]float64, n)
		for i := range aDiag {
			aDiag[i] = 0.5 + r.Float64()
		}
		b := randomSPD(r, n)
		ge, err := SymDefEigen(aDiag, b)
		if err != nil {
			return false
		}
		negLambda := VecScale(-1, ge.Lambda) // C = -A⁻¹B eigenvalues
		e1 := ExpmEigen(ge.V, negLambda, ge.VInv, 0.5)
		e2 := ExpmEigen(ge.V, negLambda, ge.VInv, 5.0)
		return e2.FrobeniusNorm() < e1.FrobeniusNorm()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExpmNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Expm of non-square matrix did not panic")
		}
	}()
	Expm(New(2, 3))
}

func TestPadeCoefficientsDegree6(t *testing.T) {
	// Known closed form for m=6: c = [1, 1/2, 5/44, 1/66, 1/792, 1/15840, 1/665280].
	want := []float64{1, 0.5, 5.0 / 44, 1.0 / 66, 1.0 / 792, 1.0 / 15840, 1.0 / 665280}
	got := padeCoefficients(6)
	if !VecApproxEqual(got, want, 1e-15) {
		t.Fatalf("coefficients = %v, want %v", got, want)
	}
}

func BenchmarkExpmEigen129(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	n := 129
	aDiag := make([]float64, n)
	for i := range aDiag {
		aDiag[i] = 0.5 + r.Float64()
	}
	spd := randomSPD(r, n)
	ge, err := SymDefEigen(aDiag, spd)
	if err != nil {
		b.Fatal(err)
	}
	neg := VecScale(-1, ge.Lambda)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpmEigen(ge.V, neg, ge.VInv, 0.0005)
	}
}
