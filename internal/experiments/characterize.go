package experiments

import (
	"sync"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runPair executes two scheduler variants of the same workload concurrently
// (each on its own platform, fully isolated), halving experiment wall time.
func runPair(opts Options,
	mkA, mkB func(*sim.Platform) sim.Scheduler,
	specs []workload.Spec, cfg sim.Config) (a, b *sim.Result, err error) {

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		a, errA = runWorkload(opts, mkA, specs, cfg)
	}()
	go func() {
		defer wg.Done()
		b, errB = runWorkload(opts, mkB, specs, cfg)
	}()
	wg.Wait()
	if errA != nil {
		return nil, nil, errA
	}
	if errB != nil {
		return nil, nil, errB
	}
	return a, b, nil
}

// HeterogeneityRow characterizes one benchmark on the platform — the
// S-NUCA performance heterogeneity of [19] that both schedulers exploit.
type HeterogeneityRow struct {
	Benchmark string
	// BestIPS and WorstIPS are instructions/second at peak frequency on the
	// lowest- and highest-AMD cores.
	BestIPS  float64
	WorstIPS float64
	// PlacementGainPercent is the center-vs-corner speedup.
	PlacementGainPercent float64
	// DVFSSlowdownPercent is the performance lost at half frequency (on the
	// centre core) — the knob PCMig pays with.
	DVFSSlowdownPercent float64
}

// Heterogeneity tabulates placement and DVFS sensitivity of every PARSEC
// model on the 64-core platform: memory-bound benchmarks care about
// placement and shrug off DVFS; compute-bound benchmarks are the reverse.
func Heterogeneity() ([]HeterogeneityRow, error) {
	plat, err := newPlatform(8)
	if err != nil {
		return nil, err
	}
	fp := plat.FP
	// Lowest- and highest-AMD cores.
	best, worst := 0, 0
	for c := 1; c < fp.NumCores(); c++ {
		if fp.AMD(c) < fp.AMD(best) {
			best = c
		}
		if fp.AMD(c) > fp.AMD(worst) {
			worst = c
		}
	}
	fmax := plat.Power.DVFS().FMax
	var rows []HeterogeneityRow
	for _, b := range workload.PARSEC() {
		p := b.Perf()
		bestIPS := plat.Perf.IPS(p, best, fmax)
		worstIPS := plat.Perf.IPS(p, worst, fmax)
		slow := plat.Perf.SlowdownAt(p, best, fmax/2, fmax)
		rows = append(rows, HeterogeneityRow{
			Benchmark:            b.Name,
			BestIPS:              bestIPS,
			WorstIPS:             worstIPS,
			PlacementGainPercent: (bestIPS/worstIPS - 1) * 100,
			DVFSSlowdownPercent:  (slow - 1) * 100,
		})
	}
	return rows, nil
}

// NoiseSweepRow is one sensor-noise level of the robustness ablation.
type NoiseSweepRow struct {
	NoiseStdDev float64 // K
	Makespan    float64 // seconds
	PeakTemp    float64
	DTMTime     float64
}

// NoiseSweep reruns a hot full-load workload under HotPotato with increasing
// scheduler-visible thermal-sensor noise. HotPotato leans on the Algorithm 1
// model rather than raw sensor values, so moderate noise should cost little.
func NoiseSweep(levels []float64, opts Options) ([]NoiseSweepRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName("blackscholes")
	if err != nil {
		return nil, err
	}
	specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	var rows []NoiseSweepRow
	for _, level := range levels {
		cfg := sim.DefaultConfig()
		cfg.SensorNoiseStdDev = level
		cfg.SensorNoiseSeed = 77
		res, err := runWorkload(opts, func(p *sim.Platform) sim.Scheduler {
			return sched.NewHotPotato(p, opts.TDTM)
		}, specs, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseSweepRow{
			NoiseStdDev: level,
			Makespan:    res.Makespan,
			PeakTemp:    res.PeakTemp,
			DTMTime:     res.DTMTime,
		})
	}
	return rows, nil
}

// HeadroomSweepRow is one Δ setting of the headroom ablation.
type HeadroomSweepRow struct {
	Delta     float64 // K
	Makespan  float64
	PeakTemp  float64
	DTMEvents int
}

// HeadroomSweep varies HotPotato's Δ (paper default 1 °C): a larger margin
// buys fewer DTM excursions at the cost of more conservative scheduling.
func HeadroomSweep(deltas []float64, opts Options) ([]HeadroomSweepRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName("blackscholes")
	if err != nil {
		return nil, err
	}
	specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	var rows []HeadroomSweepRow
	for _, delta := range deltas {
		res, err := runWorkload(opts, func(p *sim.Platform) sim.Scheduler {
			return sched.NewHotPotato(p, opts.TDTM, sched.WithHeadroom(delta))
		}, specs, sim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, HeadroomSweepRow{
			Delta:     delta,
			Makespan:  res.Makespan,
			PeakTemp:  res.PeakTemp,
			DTMEvents: res.DTMEvents,
		})
	}
	return rows, nil
}

// ContentionRow compares one benchmark with the NoC/bank contention model on
// and off.
type ContentionRow struct {
	Benchmark         string
	HotPotatoOff      float64 // makespan, contention-free
	HotPotatoOn       float64 // makespan with contention
	PCMigOn           float64
	SpeedupOnPercent  float64 // HotPotato vs PCMig, both with contention
	ContentionCostPct float64 // HotPotato slowdown from enabling contention
}

// Contention reruns the headline comparison with the bandwidth model
// enabled for the memory-heavy benchmarks: the HotPotato-vs-PCMig
// conclusion must survive shared-resource queueing.
func Contention(opts Options, benchmarks []string) ([]ContentionRow, error) {
	opts = opts.withDefaults()
	var rows []ContentionRow
	for _, name := range benchmarks {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		cfgOn := sim.DefaultConfig()
		cfgOn.NoCContention = true
		hpOff, err := runWorkload(opts, func(p *sim.Platform) sim.Scheduler {
			return sched.NewHotPotato(p, opts.TDTM)
		}, specs, sim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		hpOn, pcOn, err := runPair(opts,
			func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) },
			func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) },
			specs, cfgOn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContentionRow{
			Benchmark:         name,
			HotPotatoOff:      hpOff.Makespan,
			HotPotatoOn:       hpOn.Makespan,
			PCMigOn:           pcOn.Makespan,
			SpeedupOnPercent:  (pcOn.Makespan - hpOn.Makespan) / pcOn.Makespan * 100,
			ContentionCostPct: (hpOn.Makespan/hpOff.Makespan - 1) * 100,
		})
	}
	return rows, nil
}
