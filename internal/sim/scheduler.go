package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/perf"
	"repro/internal/workload"
)

// ThreadID identifies one thread of one task.
type ThreadID struct {
	Task   int // workload.Task.ID
	Thread int // 0 = master
}

// MarshalText renders the ID as "task:thread", which also makes ThreadID
// usable as a JSON object key (pin maps in declarative scheduler specs).
func (id ThreadID) MarshalText() ([]byte, error) {
	return []byte(strconv.Itoa(id.Task) + ":" + strconv.Itoa(id.Thread)), nil
}

// String returns the "task:thread" form (same as MarshalText).
func (id ThreadID) String() string {
	return strconv.Itoa(id.Task) + ":" + strconv.Itoa(id.Thread)
}

// UnmarshalText parses the "task:thread" form produced by MarshalText.
func (id *ThreadID) UnmarshalText(text []byte) error {
	task, thread, ok := strings.Cut(string(text), ":")
	if !ok {
		return fmt.Errorf("sim: thread id %q not in task:thread form", text)
	}
	t, err := strconv.Atoi(task)
	if err != nil {
		return fmt.Errorf("sim: thread id %q: %w", text, err)
	}
	th, err := strconv.Atoi(thread)
	if err != nil {
		return fmt.Errorf("sim: thread id %q: %w", text, err)
	}
	*id = ThreadID{Task: t, Thread: th}
	return nil
}

// ThreadInfo is the scheduler-visible snapshot of one live thread.
type ThreadInfo struct {
	ID        ThreadID
	Benchmark string
	Perf      perf.Params
	// NominalWatts is the thread's active power at peak frequency — the
	// conservative fallback when no power history exists yet.
	NominalWatts float64
	State        workload.ThreadState
	// Core is the thread's current core, or -1 while queued.
	Core int
	// AvgPower is the time-weighted mean power over the last 10 ms the
	// thread attributably drew (paper §V); NominalWatts until history exists.
	AvgPower float64
	// CPI is the thread's effective cycles-per-instruction at peak frequency
	// on its current core (or the chip-median core while queued) — the
	// metric HotPotato sorts by in Algorithm 2.
	CPI float64
	// RemainingInstr is the work left across all phases.
	RemainingInstr float64
	// Arrival is the owning task's arrival time.
	Arrival float64
}

// State is the snapshot handed to the scheduler on every invocation.
type State struct {
	Time      float64
	CoreTemps []float64 // per-core silicon temperatures, °C
	Threads   []ThreadInfo
	Platform  *Platform
	TDTM      float64 // the DTM trip temperature the run enforces
	DTMActive bool
}

// Decision is the scheduler's answer: a thread→core mapping and per-core
// frequencies. Threads omitted from Assignment stay (or become) queued and
// make no progress. Cores may hold at most one thread.
type Decision struct {
	Assignment map[ThreadID]int
	// Freq is the per-core frequency in Hz; nil means peak frequency on
	// every core. Values are clamped to the platform's DVFS ladder.
	Freq []float64
	// NextInvoke asks the simulator to call the scheduler again after this
	// many seconds (rounded up to slice granularity) unless an arrival or
	// finish event happens earlier. Zero selects the default epoch.
	NextInvoke float64
}

// Scheduler is the policy plug-in interface. Implementations live in
// internal/sched (HotPotato, PCMig, TSP, static policies).
type Scheduler interface {
	Name() string
	Decide(st *State) Decision
}
