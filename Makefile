# Convenience targets for the hotpotato reproduction.

GO ?= go

.PHONY: all build test test-short race bench experiments vet fmt cover serve

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the short suite — validates docs/CONCURRENCY.md.
race:
	$(GO) test -short -race ./...

cover:
	$(GO) test -cover ./...

# Run the HTTP simulation service (docs/SERVICE.md) on :8080.
serve:
	$(GO) run ./cmd/hotpotato-server

# Regenerate every paper table & figure (tables to stdout).
experiments:
	$(GO) run ./cmd/experiments -exp all

# One testing.B benchmark per paper table/figure.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...
