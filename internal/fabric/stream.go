package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// TerminalRecordType is the "type" discriminator of the record that ends a
// sweep stream. Once a RecordStream has sent it, the stream is closed to
// further records: "the summary is the final record" is part of the wire
// contract clients rely on to distinguish a finished sweep from a dropped
// connection, so the writer enforces it structurally instead of trusting
// every caller's goroutine ordering.
const TerminalRecordType = "summary"

// RecordStream serializes the NDJSON (or SSE) records of one sweep stream —
// the shared writer behind the dispatcher's and hotpotato-server's
// POST /v1/batch. Every record is flushed immediately: the whole point of
// the endpoint is that cell results arrive as they finish, not at the end.
//
// Send is safe for concurrent use (results and heartbeats race by design);
// the terminal rule above is enforced under the same lock, so no record can
// interleave after the summary even when a heartbeat fires late.
type RecordStream struct {
	mu       sync.Mutex
	w        http.ResponseWriter
	f        http.Flusher
	sse      bool
	terminal bool
	dropped  int64
	// onDrop observes every record the stream refused to write (marshal
	// failure, or a record after the terminal summary). nil means drops are
	// only counted.
	onDrop func(typ, reason string)
}

// NewRecordStream wraps w as a sweep record stream and writes the response
// headers: application/x-ndjson framing by default, text/event-stream when
// sse is set. onDrop (may be nil) observes refused records — callers log and
// count them so a silently thinner stream is visible in operation.
func NewRecordStream(w http.ResponseWriter, sse bool, onDrop func(typ, reason string)) *RecordStream {
	f, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	return &RecordStream{w: w, f: f, sse: sse, onDrop: onDrop}
}

// SSE reports whether the stream uses Server-Sent Events framing.
func (s *RecordStream) SSE() bool { return s.sse }

// Send writes one record and flushes it. typ is the SSE event name; NDJSON
// carries the same discriminator inside the record's "type" field. Sending
// TerminalRecordType seals the stream: any later Send is dropped (counted,
// reported to onDrop) instead of corrupting the documented summary-last
// ordering. A record whose body fails to marshal is likewise dropped rather
// than silently skipped. Send reports whether the record went out.
func (s *RecordStream) Send(typ string, rec any) bool {
	body, err := json.Marshal(rec)
	if err != nil {
		s.drop(typ, fmt.Sprintf("marshal: %v", err))
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.terminal {
		s.droppedLocked(typ, "record after terminal summary")
		return false
	}
	if typ == TerminalRecordType {
		s.terminal = true
	}
	if s.sse {
		fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", typ, body)
	} else {
		s.w.Write(body)
		s.w.Write([]byte("\n"))
	}
	if s.f != nil {
		s.f.Flush()
	}
	return true
}

// Dropped returns how many records the stream refused to write.
func (s *RecordStream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *RecordStream) drop(typ, reason string) {
	s.mu.Lock()
	s.droppedLocked(typ, reason)
	s.mu.Unlock()
}

// droppedLocked counts (and reports) one refused record; callers hold mu.
func (s *RecordStream) droppedLocked(typ, reason string) {
	s.dropped++
	if s.onDrop != nil {
		s.onDrop(typ, reason)
	}
}
