package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecAddSub(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := VecAdd(a, b); !VecApproxEqual(got, []float64{5, 7, 9}, 0) {
		t.Errorf("VecAdd = %v", got)
	}
	if got := VecSub(b, a); !VecApproxEqual(got, []float64{3, 3, 3}, 0) {
		t.Errorf("VecSub = %v", got)
	}
}

func TestVecAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched VecAdd did not panic")
		}
	}()
	VecAdd([]float64{1}, []float64{1, 2})
}

func TestVecScaleAndAddTo(t *testing.T) {
	a := []float64{1, -2}
	if got := VecScale(3, a); !VecApproxEqual(got, []float64{3, -6}, 0) {
		t.Errorf("VecScale = %v", got)
	}
	dst := []float64{10, 10}
	VecAddTo(dst, a)
	if !VecApproxEqual(dst, []float64{11, 8}, 0) {
		t.Errorf("VecAddTo = %v", dst)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, -5, 6}); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
}

func TestVecMaxAndIndex(t *testing.T) {
	a := []float64{-5, 3, 2, 3}
	if got := VecMax(a); got != 3 {
		t.Errorf("VecMax = %v", got)
	}
	if got := VecMaxIndex(a); got != 1 {
		t.Errorf("VecMaxIndex = %v, want 1 (first max)", got)
	}
}

func TestVecMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("VecMax(nil) did not panic")
		}
	}()
	VecMax(nil)
}

func TestNormsVec(t *testing.T) {
	a := []float64{3, -4}
	if got := VecNorm2(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("VecNorm2 = %v", got)
	}
	if got := VecNormInf(a); got != 4 {
		t.Errorf("VecNormInf = %v", got)
	}
}

func TestConstant(t *testing.T) {
	c := Constant(4, 2.5)
	if len(c) != 4 {
		t.Fatalf("len = %d", len(c))
	}
	for _, v := range c {
		if v != 2.5 {
			t.Fatalf("Constant = %v", c)
		}
	}
}

// Property: Cauchy-Schwarz |a·b| ≤ ‖a‖‖b‖.
func TestPropCauchySchwarz(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate draws
			}
		}
		return math.Abs(Dot(a, b)) <= VecNorm2(a)*VecNorm2(b)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality ‖a+b‖ ≤ ‖a‖+‖b‖.
func TestPropTriangleInequality(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return VecNorm2(VecAdd(a, b)) <= VecNorm2(a)+VecNorm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
