package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// JobStatus is the lifecycle state of an async submission.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Job is the public view of one async submission, as returned by
// GET /v1/jobs/{id}. Result is set once Status is done (and also for failed
// runs that produced a partial result, e.g. timeouts). RequestID is the
// correlation ID of the submitting request — the same value the submit
// response carried in its X-Request-Id header — so a caller can join job
// polls, access-log lines and span trees on one key. Profile is the
// wall-clock breakdown (queue/build/decide/step) filled in when the job
// reaches a terminal state.
type Job struct {
	ID        string            `json:"id"`
	Status    JobStatus         `json:"status"`
	RequestID string            `json:"request_id,omitempty"`
	Result    *hotpotato.Result `json:"result,omitempty"`
	Profile   *obs.RunProfile   `json:"profile,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// Terminal reports whether s is a final state (the job will never run again).
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// jobState is the store's mutable record behind a Job view.
type jobState struct {
	mu   sync.Mutex
	job  Job
	spec hotpotato.RunSpec
	// seq is the store's submission counter at creation; GET /v1/jobs sorts
	// on it so listings are stable submission order, not map order.
	seq int
	// tracer collects one obs.EpochEvent per scheduler epoch of the run for
	// GET /v1/jobs/{id}/trace; nil when the server disables tracing. It is
	// internally synchronized — the trace endpoint reads it mid-run.
	tracer *obs.RingTracer
	// spans records the job's phase timings for GET /v1/jobs/{id}/spans;
	// nil when the server disables span tracing. rootSpan is the "run" span
	// opened at submission and closed at the terminal transition; queueSpan
	// covers submission → worker pickup. Both are nil-safe.
	spans     *obs.SpanRecorder
	rootSpan  *obs.Span
	queueSpan *obs.Span
	// submittedAt anchors the job's RunProfile total and queue durations.
	submittedAt time.Time
	// doneAt is when the job reached a terminal status; the janitor evicts
	// the record once it has been terminal for the configured retention.
	doneAt time.Time
}

func (j *jobState) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.job
}

func (j *jobState) setStatus(s JobStatus) {
	j.mu.Lock()
	j.job.Status = s
	j.mu.Unlock()
}

func (j *jobState) finish(status JobStatus, res *hotpotato.Result, prof *obs.RunProfile, err error) {
	j.mu.Lock()
	j.job.Status = status
	j.job.Result = res
	j.job.Profile = prof
	if err != nil {
		j.job.Error = err.Error()
	}
	j.doneAt = time.Now()
	j.mu.Unlock()
	j.rootSpan.SetError(err)
	j.rootSpan.SetAttr("status", string(status))
	j.rootSpan.End()
	// A job canceled while still queued never reached runJob; close its
	// queue-wait span here so the tree has no dangling open phases.
	j.queueSpan.End()
}

// terminalSince returns when the job entered a terminal status, and whether
// it has.
func (j *jobState) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneAt, j.job.Status.Terminal()
}

// jobStore tracks every submission by ID.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*jobState
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*jobState)}
}

func (s *jobStore) create(spec hotpotato.RunSpec, requestID string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &jobState{
		job:         Job{ID: fmt.Sprintf("job-%d", s.seq), Status: JobQueued, RequestID: requestID},
		spec:        spec,
		seq:         s.seq,
		submittedAt: time.Now(),
	}
	s.jobs[j.job.ID] = j
	return j
}

func (s *jobStore) get(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// list returns snapshots of every stored job in submission order, keeping
// only those whose status equals filter ("" keeps all). Evicted jobs are
// simply absent — the store is a live view bounded by the retention janitor,
// not an archive.
func (s *jobStore) list(filter JobStatus) []Job {
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.jobs))
	for _, j := range s.jobs {
		states = append(states, j)
	}
	s.mu.Unlock()
	sort.Slice(states, func(i, k int) bool { return states[i].seq < states[k].seq })
	jobs := make([]Job, 0, len(states))
	for _, j := range states {
		snap := j.snapshot()
		if filter != "" && snap.Status != filter {
			continue
		}
		jobs = append(jobs, snap)
	}
	return jobs
}

func (s *jobStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// evictTerminal removes every job that reached a terminal status at or before
// cutoff, returning how many were evicted. Queued and running jobs are never
// touched.
func (s *jobStore) evictTerminal(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, j := range s.jobs {
		if doneAt, terminal := j.terminalSince(); terminal && !doneAt.After(cutoff) {
			delete(s.jobs, id)
			evicted++
		}
	}
	return evicted
}
