package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/thermal
cpu: AMD EPYC 7B13
BenchmarkHotloopStepAlloc-8   	   21862	     54093 ns/op	    4424 B/op	       4 allocs/op
BenchmarkHotloopStepTo-8      	   22832	     52205 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/thermal	3.456s
pkg: repro
BenchmarkHotloopSweep-8   	       1	1234567890 ns/op	     99.5 peak_speedup_%	 1000 B/op	      10 allocs/op
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleOutput)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q/%q/%q", doc.GOOS, doc.GOARCH, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "HotloopStepTo" || b.Procs != 8 || b.Package != "repro/internal/thermal" {
		t.Errorf("benchmark = %+v", b)
	}
	if b.Iterations != 22832 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	for unit, want := range map[string]float64{"ns/op": 52205, "B/op": 0, "allocs/op": 0} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if got := doc.Benchmarks[2].Metrics["peak_speedup_%"]; got != 99.5 {
		t.Errorf("extra metric = %v, want 99.5", got)
	}
	if doc.Benchmarks[2].Package != "repro" {
		t.Errorf("package tracking broke: %q", doc.Benchmarks[2].Package)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken-8 not-a-number 5 ns/op",
		"BenchmarkOdd-8 100 5 ns/op trailing",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
